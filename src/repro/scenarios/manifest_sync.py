"""Tolerance-manifest generation: scenarios are the single source of truth.

``results/TOLERANCES.json`` used to be hand-maintained; it is now
*generated* from the builtin scenarios' :class:`ToleranceSpec` /
:class:`Reference` declarations.  ``python -m repro.scenarios
emit-manifest`` rewrites it; ``check-manifest`` (run in CI and by the
test suite) asserts the committed file equals the generated document,
so a tolerance edit in one place can never drift from the other.

The ``references`` key inside an item entry is written for scenario
round-tripping; the :mod:`repro.validate.manifest` loader ignores keys
it does not know, so older readers are unaffected.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import paper_scenarios
from .spec import Reference, ScenarioError

#: Manifest schema version written by the generator (v1 was hand-written).
MANIFEST_VERSION = 2

#: Default per-kind tolerances, as the validate layer has always used.
MANIFEST_DEFAULTS = {
    "figure": {"mode": "rel", "rtol": 0.02},
    "table": {"mode": "rel", "rtol": 0.02},
}


def generate_manifest_doc() -> dict:
    """The TOLERANCES.json document implied by the scenario registry."""
    items: dict[str, dict] = {}
    for s in paper_scenarios():
        entry: dict = {}
        if s.tolerance is not None:
            entry.update(s.tolerance.manifest_entry())
        if s.references:
            entry["references"] = {
                m: {metric: ref.to_json()
                    for metric, ref in sorted(refs.items())}
                for m, refs in sorted(s.references.items())
            }
        if entry:
            items[s.scenario_id] = entry
    return {"version": MANIFEST_VERSION, "defaults": MANIFEST_DEFAULTS,
            "items": items}


def render_manifest(doc: dict | None = None) -> str:
    doc = generate_manifest_doc() if doc is None else doc
    return json.dumps(doc, indent=1) + "\n"


def write_manifest(path: str | Path) -> None:
    Path(path).write_text(render_manifest())


def parse_manifest_references(doc: dict) -> dict[str, dict[str, dict[str, Reference]]]:
    """item id -> machine -> metric -> Reference, parsed back from a doc.

    Together with :func:`generate_manifest_doc` this is the round trip
    the property tests pin: scenario references survive the manifest
    encoding losslessly.
    """
    out: dict[str, dict[str, dict[str, Reference]]] = {}
    for item_id, entry in doc.get("items", {}).items():
        refs = entry.get("references")
        if not refs:
            continue
        out[item_id] = {
            machine: {metric: Reference.from_obj(obj)
                      for metric, obj in metrics.items()}
            for machine, metrics in refs.items()
        }
    return out


def check_manifest_sync(path: str | Path) -> tuple[bool, str]:
    """Does the committed manifest equal the generated document?

    Returns ``(ok, message)``; the message names the first difference so
    drift reads as an actionable error.
    """
    path = Path(path)
    try:
        committed = json.loads(path.read_text())
    except FileNotFoundError:
        return False, f"{path} does not exist (run emit-manifest)"
    except json.JSONDecodeError as e:
        return False, f"{path} is not valid JSON: {e}"
    generated = generate_manifest_doc()
    if committed == generated:
        return True, f"{path} matches the scenario registry"
    for key in ("version", "defaults"):
        if committed.get(key) != generated.get(key):
            return False, (f"{path}: {key} differs (committed "
                           f"{committed.get(key)!r}, generated "
                           f"{generated.get(key)!r})")
    c_items = committed.get("items", {})
    g_items = generated.get("items", {})
    for item in sorted(set(c_items) | set(g_items)):
        if item not in g_items:
            return False, (f"{path}: item {item!r} is committed but no "
                           "scenario declares it")
        if item not in c_items:
            return False, (f"{path}: scenario {item!r} declares tolerances "
                           "missing from the committed manifest")
        if c_items[item] != g_items[item]:
            return False, (f"{path}: item {item!r} differs (committed "
                           f"{c_items[item]!r}, generated {g_items[item]!r})")
    return False, f"{path} differs from the generated manifest"


def require_manifest_sync(path: str | Path) -> None:
    ok, msg = check_manifest_sync(path)
    if not ok:
        raise ScenarioError(msg)
