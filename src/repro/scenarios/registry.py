"""Scenario registry: auto-discovery of builtin and TOML scenarios.

Discovery is lazy (first lookup) and sources, in order:

1. the 20 builtin paper scenarios (:mod:`repro.scenarios.builtin`);
2. ``*.toml`` files in the repository's ``scenarios/`` directory;
3. ``*.toml`` files in any directory listed in the
   ``REPRO_SCENARIO_PATH`` environment variable (``os.pathsep``
   separated) — the user extension point: dropping one TOML file there
   adds a machine/benchmark/fault scenario with zero code edits.

Id collisions raise :class:`~repro.scenarios.spec.ScenarioError` (the
registry never silently shadows); :func:`reload_scenarios` resets the
cache so tests can point ``REPRO_SCENARIO_PATH`` somewhere else.
"""

from __future__ import annotations

import os
from pathlib import Path

from .spec import Scenario, ScenarioError

#: Environment variable naming extra scenario directories.
SCENARIO_PATH_ENV = "REPRO_SCENARIO_PATH"

#: The repository's committed scenario directory (repo root / scenarios).
REPO_SCENARIO_DIR = Path(__file__).resolve().parents[3] / "scenarios"

_REGISTRY: dict[str, Scenario] | None = None


def _register(registry: dict[str, Scenario], scenario: Scenario) -> None:
    sid = scenario.scenario_id
    if sid in registry:
        raise ScenarioError(
            f"duplicate scenario id {sid!r}: {scenario.source} collides "
            f"with {registry[sid].source}")
    registry[sid] = scenario


def _toml_dirs() -> list[Path]:
    dirs = []
    if REPO_SCENARIO_DIR.is_dir():
        dirs.append(REPO_SCENARIO_DIR)
    extra = os.environ.get(SCENARIO_PATH_ENV, "")
    for part in extra.split(os.pathsep):
        part = part.strip()
        if part:
            dirs.append(Path(part))
    return dirs


def _discover() -> dict[str, Scenario]:
    from . import builtin
    from .toml_loader import load_toml_scenario

    registry: dict[str, Scenario] = {}
    for scenario in builtin.make_builtin_scenarios():
        _register(registry, scenario)
    for d in _toml_dirs():
        if not d.is_dir():
            raise ScenarioError(
                f"scenario directory {str(d)!r} (from "
                f"{SCENARIO_PATH_ENV}) does not exist")
        for path in sorted(d.glob("*.toml")):
            _register(registry, load_toml_scenario(path))
    return registry


def _registry() -> dict[str, Scenario]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _discover()
    return _REGISTRY


def reload_scenarios() -> None:
    """Forget the discovered registry (re-discovers on next lookup)."""
    global _REGISTRY
    _REGISTRY = None


def scenario_ids() -> tuple[str, ...]:
    """All registered scenario ids, builtins first then TOML (sorted)."""
    return tuple(_registry())


def has_scenario(scenario_id: str) -> bool:
    return scenario_id in _registry()


def get_scenario(scenario_id: str) -> Scenario:
    reg = _registry()
    try:
        return reg[scenario_id]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {scenario_id!r} "
            f"(registered: {', '.join(reg)})") from None


def all_scenarios() -> tuple[Scenario, ...]:
    return tuple(_registry().values())


def paper_scenarios() -> tuple[Scenario, ...]:
    """The builtin paper figures/tables, in canonical order."""
    return tuple(s for s in _registry().values() if "paper" in s.tags)
