"""Running and checking scenarios.

:func:`run_scenario` regenerates a scenario's figure/table through the
ambient executor; :func:`check_scenario` additionally evaluates the
scenario's per-machine references (asymmetric tolerances) and returns a
structured verdict the ``repro.validate`` gate embeds in its report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registry import get_scenario
from .spec import Scenario


def run_scenario(scenario: str | Scenario, max_cpus: int | None = None):
    """Regenerate one scenario; returns its FigureResult/TableResult."""
    s = scenario if isinstance(scenario, Scenario) else get_scenario(scenario)
    return s.run(max_cpus=max_cpus)


@dataclass(frozen=True)
class ScenarioCheck:
    """Reference-check verdict for one scenario.

    ``status`` is ``"ok"`` (all references hold), ``"fail"`` (at least
    one measurement left its tolerance band), or ``"uncovered"`` (the
    scenario declares no references checkable at this scale).
    """

    scenario_id: str
    status: str
    checks: tuple[dict, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> dict:
        return {"scenario": self.scenario_id, "status": self.status,
                "checks": list(self.checks), "detail": self.detail}


def check_scenario(scenario: str | Scenario,
                   max_cpus: int | None = None) -> ScenarioCheck:
    """Run one scenario and judge its references at this scale."""
    s = scenario if isinstance(scenario, Scenario) else get_scenario(scenario)
    if not s.references:
        return ScenarioCheck(s.scenario_id, "uncovered",
                             detail="no references declared")
    if max_cpus is not None and s.requires_full_refs:
        return ScenarioCheck(
            s.scenario_id, "uncovered",
            detail=f"references require the full-scale sweep "
                   f"(capped at {max_cpus})")
    result = s.run(max_cpus=max_cpus)
    perf = s.perf_values(result)
    checks = []
    failed = 0
    for machine, refs in sorted(s.references.items()):
        for metric, ref in sorted(refs.items()):
            entry = {"machine": machine, "metric": metric,
                     "reference": ref.to_json()}
            values = perf.get(machine)
            if values is None or metric not in values:
                entry.update(status="fail",
                             detail=f"metric {metric!r} not measured for "
                                    f"machine {machine!r}")
                failed += 1
            else:
                actual = values[metric]
                verdict = ref.check(actual)
                lo, hi = ref.bounds()
                entry.update(actual=actual, status="ok" if verdict == "ok"
                             else "fail")
                if verdict != "ok":
                    bound = lo if verdict == "below" else hi
                    entry["detail"] = (f"{actual:.6g} {verdict} the "
                                       f"{'lower' if verdict == 'below' else 'upper'}"
                                       f" bound {bound:.6g} of {ref.to_json()}")
                    failed += 1
            checks.append(entry)
    status = "fail" if failed else "ok"
    detail = (f"{failed}/{len(checks)} reference checks failed" if failed
              else f"{len(checks)} reference checks passed")
    return ScenarioCheck(s.scenario_id, status, tuple(checks), detail)


@dataclass(frozen=True)
class ScenarioSuiteReport:
    """All scenario checks from one gate run."""

    checks: tuple[ScenarioCheck, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def to_dict(self) -> list[dict]:
        return [c.to_dict() for c in self.checks]


def check_scenarios(ids, max_cpus: int | None = None) -> ScenarioSuiteReport:
    return ScenarioSuiteReport(tuple(check_scenario(i, max_cpus=max_cpus)
                                     for i in ids))
