"""The builtin scenarios: the paper's 16 figures and 4 tables.

Every figure/table the harness regenerates is declared here as one
:class:`~repro.scenarios.spec.Scenario` object — machines, benchmark,
rank grid, metric extractors, per-machine references with asymmetric
tolerances, and the item's entry in the golden-diff tolerance manifest
(``results/TOLERANCES.json`` is *generated* from these specs, see
:mod:`repro.scenarios.manifest_sync`).

The point fan-out and assembly code is byte-for-byte the logic that
used to live in ``harness/figures.py``/``harness/tables.py``; those
modules are now thin adapters over this registry.  Scenarios that share
a sweep (fig01/fig02, fig03/fig04, fig05/table3) go through the same
module-level ``lru_cache`` memos the harness always used, so running
both still computes the sweep once and output stays byte-identical.
"""

from __future__ import annotations

from functools import lru_cache

from ..analysis.ratios import TABLE3_UNITS, kiviat_normalise
from ..exec import SimPoint, get_executor
from ..hpcc.suite import scaled_config  # noqa: F401  (re-exported via harness)
from ..imb import suite as _imb_suite  # noqa: F401 - benchmark registration
from ..imb.framework import PAPER_MSG_BYTES, get_benchmark
from ..machine import PAPER_FIVE, get_machine
from .spec import Reference, Scenario, ToleranceSpec, cap_cpus

#: Machines in the HPCC balance sweeps (Figs 1-4), as in the paper.
HPCC_SWEEP_MACHINES = ("altix_nl4", "altix_nl3", "sx8", "xeon", "opteron")

#: Machines in the IMB figures.
IMB_MACHINES = ("sx8", "x1_msp", "x1_ssp", "altix_nl4", "xeon", "opteron")

#: Largest configuration each system contributes to Fig 5 / Table 3
#: (the paper's text quotes 506/440/576/64 CPU runs).
# NOTE: the paper's Fig 5 / Table 3 use the NUMALINK3 Altix numbers
# (its ring-bandwidth maximum 0.094 B/F equals NL3's 93.8 B/KFlop), so
# the NL4 variant is deliberately absent here.
FLAGSHIP_CPUS = {
    "altix_nl3": 440,
    "sx8": 576,
    "xeon": 512,
    "opteron": 64,
    "x1_ssp": 48,
}

#: fig id -> (benchmark, y field, ylabel) for the IMB figures 6-15.
IMB_FIGURES = {
    "fig06": ("Barrier", "time_us", "time (us/call)"),
    "fig07": ("Allreduce", "time_us", "time (us/call)"),
    "fig08": ("Reduce", "time_us", "time (us/call)"),
    "fig09": ("Reduce_scatter", "time_us", "time (us/call)"),
    "fig10": ("Allgather", "time_us", "time (us/call)"),
    "fig11": ("Allgatherv", "time_us", "time (us/call)"),
    "fig12": ("Alltoall", "time_us", "time (us/call)"),
    "fig13": ("Sendrecv", "bandwidth_mbs", "bandwidth (MB/s)"),
    "fig14": ("Exchange", "bandwidth_mbs", "bandwidth (MB/s)"),
    "fig15": ("Bcast", "time_us", "time (us/call)"),
}

#: Fig 16 axes, all "higher is better", each normalised by its best
#: machine (1 = best), mirroring the Fig 5 kiviat construction.
ENERGY_KIVIAT_COLUMNS = (
    "HPL Gflop/s",
    "Mflop/s per W",
    "Solutions per MJ",    # 1 / energy-to-solution
    "1 / EDP",
)


# ---------------------------------------------------------------------------
# Shared sweeps (memoised: sibling scenarios compute each sweep once)
# ---------------------------------------------------------------------------

def _balance_sweep(kind: str, max_cpus: int | None, **params):
    """(machine -> [(cpus, hpl_tflops, accumulated_GBs)]) via the executor.

    ``kind`` is a worker point kind ("ring_hpl" / "stream_hpl") whose value
    is an (hpl, accumulated) pair; the points for all machines are batched
    into one executor call so a parallel run overlaps everything.
    """
    plan = []
    points = []
    for name in HPCC_SWEEP_MACHINES:
        m = get_machine(name)
        counts = m.cpu_counts(start=4, maximum=cap_cpus(m, max_cpus))
        plan.append((name, counts))
        points.extend(SimPoint.make(kind, name, p, **params) for p in counts)
    values = iter(get_executor().run_points(points))
    return {
        name: [(p, *next(values)) for p in counts]
        for name, counts in plan
    }


@lru_cache(maxsize=8)
def _ring_hpl_sweep(max_cpus: int | None):
    """(machine -> [(cpus, hpl_tflops, accumulated_ring_GBs)])."""
    return _balance_sweep("ring_hpl", max_cpus, n_rings=4)


@lru_cache(maxsize=8)
def _stream_hpl_sweep(max_cpus: int | None):
    """(machine -> [(cpus, hpl_tflops, accumulated_stream_copy_GBs)])."""
    return _balance_sweep("stream_hpl", max_cpus)


@lru_cache(maxsize=8)
def flagship_results(max_cpus: int | None = None):
    """Full HPCC at each machine's largest measured configuration."""
    points = []
    for name, cpus in FLAGSHIP_CPUS.items():
        p = cpus if max_cpus is None else min(cpus, max_cpus)
        points.append(SimPoint.make("hpcc", name, p))
    return tuple(get_executor().run_points(points))


def clear_scenario_caches() -> None:
    """Drop the memoised sweeps (determinism/golden tests re-run them)."""
    _ring_hpl_sweep.cache_clear()
    _stream_hpl_sweep.cache_clear()
    flagship_results.cache_clear()


# Imported *after* the constants and sweep memos above: when this module
# is the import entry point, ``repro.harness.__init__`` pulls
# ``harness.figures``, which re-imports those names from this (then
# partially initialised) module — so they must already be bound.
from ..harness.results import FigureResult, FigureSeries, TableResult  # noqa: E402


# ---------------------------------------------------------------------------
# Scenario shapes
# ---------------------------------------------------------------------------

class SweepFigureScenario(Scenario):
    """Figure built from a shared memoised balance sweep (figs 1-4).

    ``run()`` goes through the sweep memo so sibling figures (absolute +
    ratio views of the same sweep) compute their points once;
    :meth:`plan` still reports the underlying fan-out for introspection.
    """

    def __init__(self, scenario_id, *, point_kind, point_params, sweep_fn,
                 build, **kw):
        kw.setdefault("tags", ("paper", "hpcc"))
        super().__init__(scenario_id, **kw)
        self.point_kind = point_kind
        self.point_params = dict(point_params)
        self._sweep_fn = sweep_fn
        self._build = build

    def machine_names(self):
        return HPCC_SWEEP_MACHINES

    def plan(self, max_cpus=None):
        points = []
        for name in HPCC_SWEEP_MACHINES:
            m = get_machine(name)
            counts = m.cpu_counts(start=4, maximum=cap_cpus(m, max_cpus))
            points.extend(SimPoint.make(self.point_kind, name, p,
                                        **self.point_params)
                          for p in counts)
        return points

    def run(self, max_cpus=None):
        return self._build(self._sweep_fn(max_cpus))

    def assemble(self, values, max_cpus=None):
        # Equivalent non-memoised path (used when values were computed
        # directly from plan()); reshapes the flat value list back into
        # the per-machine sweep dict the builder expects.
        it = iter(values)
        data = {}
        for name in HPCC_SWEEP_MACHINES:
            m = get_machine(name)
            counts = m.cpu_counts(start=4, maximum=cap_cpus(m, max_cpus))
            data[name] = [(p, *next(it)) for p in counts]
        return self._build(data)


def _build_fig01(data):
    series = tuple(
        FigureSeries(
            machine=name,
            label=get_machine(name).label,
            x=tuple(h for (_p, h, _v) in pts),
            y=tuple(v for (_p, _h, v) in pts),
        )
        for name, pts in data.items()
    )
    return FigureResult(
        fig_id="fig01",
        title="Accumulated random ring bandwidth vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Accumulated random-ring bandwidth (GB/s)",
        series=series,
        extra={"cpu_counts": {n: [p for (p, _h, _v) in pts]
                              for n, pts in data.items()}},
    )


def _build_fig02(data):
    series = []
    for name, pts in data.items():
        xs, ys = [], []
        for p, hpl, acc in pts:
            xs.append(hpl)
            # B/KFlop: accumulated bytes/s per kflop/s of HPL.
            ys.append(acc * 1e9 / (hpl * 1e12 / 1e3))
        series.append(FigureSeries(machine=name,
                                   label=get_machine(name).label,
                                   x=tuple(xs), y=tuple(ys)))
    return FigureResult(
        fig_id="fig02",
        title="Accumulated random ring bandwidth ratio vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Ring bandwidth per HPL (B/KFlop)",
        series=tuple(series),
        notes="Paper anchors: SX-8 ~60 flat 128-576 CPUs; Altix NL4 203 in "
              "one box collapsing to 23 at 2024 CPUs; NL3 ~94; Opteron ~24.",
        extra={"cpu_counts": {n: [p for (p, _h, _v) in pts]
                              for n, pts in data.items()}},
    )


def _build_fig03(data):
    series = tuple(
        FigureSeries(
            machine=name,
            label=get_machine(name).label,
            x=tuple(h for (_p, h, _v) in pts),
            y=tuple(v for (_p, _h, v) in pts),
        )
        for name, pts in data.items()
    )
    return FigureResult(
        fig_id="fig03",
        title="Accumulated EP-STREAM Copy vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="Accumulated STREAM Copy (GB/s)",
        series=series,
    )


def _build_fig04(data):
    series = []
    for name, pts in data.items():
        xs = [h for (_p, h, _v) in pts]
        ys = [v / (h * 1e3) for (_p, h, v) in pts]  # GB/s over GFlop/s
        series.append(FigureSeries(machine=name,
                                   label=get_machine(name).label,
                                   x=tuple(xs), y=tuple(ys)))
    return FigureResult(
        fig_id="fig04",
        title="Accumulated EP-STREAM Copy ratio vs HPL performance",
        xlabel="HPL (TFlop/s)",
        ylabel="STREAM Copy per HPL (Byte/Flop)",
        series=tuple(series),
        notes="Paper anchors: SX-8 > 2.67 B/F; Altix > 0.36; "
              "Opteron 0.84-1.07.",
    )


class KiviatScenario(Scenario):
    """Fig 5: all HPCC results normalised by HPL then by column max."""

    def __init__(self, scenario_id, **kw):
        kw.setdefault("tags", ("paper", "hpcc", "kiviat"))
        super().__init__(scenario_id, **kw)

    def machine_names(self):
        return tuple(FLAGSHIP_CPUS)

    def plan(self, max_cpus=None):
        points = []
        for name, cpus in FLAGSHIP_CPUS.items():
            p = cpus if max_cpus is None else min(cpus, max_cpus)
            points.append(SimPoint.make("hpcc", name, p))
        return points

    def run_with_data(self, max_cpus=None):
        """(FigureResult, KiviatData) — the legacy ``fig05`` contract."""
        results = flagship_results(max_cpus)
        return self._assemble_results(results)

    def run(self, max_cpus=None):
        return self.run_with_data(max_cpus)[0]

    def assemble(self, values, max_cpus=None):
        return self._assemble_results(tuple(values))[0]

    def _assemble_results(self, results):
        data = kiviat_normalise(results)
        series = []
        for m in data.machines:
            row = data.normalised[m]
            xs, ys = [], []
            for i, col in enumerate(data.columns):
                if row[col] is not None:
                    xs.append(float(i))
                    ys.append(row[col])
            series.append(FigureSeries(machine=m, label=get_machine(m).label,
                                       x=tuple(xs), y=tuple(ys)))
        fig = FigureResult(
            fig_id="fig05",
            title="Comparison of all benchmarks normalised with HPL value",
            xlabel="benchmark column index (see analysis.KIVIAT_COLUMNS)",
            ylabel="normalised ratio (best system = 1)",
            series=tuple(series),
            extra={"columns": data.columns, "maxima": data.maxima},
        )
        return fig, data


class IMBFigureScenario(Scenario):
    """One IMB collective/transfer figure across the machine set."""

    def __init__(self, scenario_id, *, benchmark, field, ylabel,
                 machines=IMB_MACHINES, msg_bytes=PAPER_MSG_BYTES, **kw):
        kw.setdefault("tags", ("paper", "imb"))
        super().__init__(scenario_id, **kw)
        self.benchmark = benchmark
        self.field = field
        self.ylabel = ylabel
        self.machines = tuple(machines)
        # Barrier has no payload; the legacy harness forced 0 bytes.
        self.msg_bytes = 0 if benchmark == "Barrier" else msg_bytes

    def machine_names(self):
        return self.machines

    def _plan(self, max_cpus):
        min_procs = get_benchmark(self.benchmark).min_procs
        plan = []
        points = []
        for name in self.machines:
            m = get_machine(name)
            counts = m.cpu_counts(start=min_procs,
                                  maximum=cap_cpus(m, max_cpus))
            plan.append((m, counts))
            points.extend(
                SimPoint.make("imb", name, p, benchmark=self.benchmark,
                              msg_bytes=self.msg_bytes)
                for p in counts
            )
        return plan, points

    def plan(self, max_cpus=None):
        return self._plan(max_cpus)[1]

    def assemble(self, values, max_cpus=None):
        plan, _points = self._plan(max_cpus)
        it = iter(values)
        series = []
        for m, counts in plan:
            results = [next(it) for _ in counts]
            series.append(FigureSeries(
                machine=m.name,
                label=m.label,
                x=tuple(float(r.nprocs) for r in results),
                y=tuple(getattr(r, self.field) for r in results),
            ))
        size_note = ("" if self.benchmark == "Barrier"
                     else f", {self.msg_bytes} B messages")
        return FigureResult(
            fig_id=self.scenario_id,
            title=f"IMB {self.benchmark} on varying number of "
                  f"processors{size_note}",
            xlabel="CPUs",
            ylabel=self.ylabel,
            series=tuple(series),
        )


class EnergyKiviatScenario(Scenario):
    """Fig 16: analytic energy kiviat (no simulation points)."""

    def __init__(self, scenario_id, **kw):
        kw.setdefault("tags", ("paper", "energy"))
        super().__init__(scenario_id, **kw)

    def machine_names(self):
        from ..analysis.energy import energy_ranking
        return tuple(p.machine for p in energy_ranking())

    def assemble(self, values, max_cpus=None):
        from ..analysis.energy import energy_ranking

        profiles = energy_ranking(nprocs=max_cpus)
        axes = [
            [p.hpl_gflops for p in profiles],
            [p.mflops_per_w for p in profiles],
            [1e6 / p.energy_j for p in profiles],
            [1.0 / p.edp_js for p in profiles],
        ]
        maxima = [max(col) for col in axes]
        series = tuple(
            FigureSeries(
                machine=p.machine,
                label=p.label,
                x=tuple(float(i) for i in range(len(axes))),
                y=tuple(axes[i][j] / maxima[i] for i in range(len(axes))),
            )
            for j, p in enumerate(profiles)
        )
        return FigureResult(
            fig_id="fig16",
            title="Energy efficiency normalised to the best machine (kiviat)",
            xlabel="energy column index (see ENERGY_KIVIAT_COLUMNS)",
            ylabel="normalised ratio (best system = 1)",
            series=series,
            notes="Not in the paper: modelled HPL energy profiles "
                  "(docs/MODEL.md section 13).",
            extra={"columns": list(ENERGY_KIVIAT_COLUMNS),
                   "maxima": {c: maxima[i]
                              for i, c in enumerate(ENERGY_KIVIAT_COLUMNS)}},
        )


class StaticTableScenario(Scenario):
    """A table assembled without simulation points (tables 1, 2, 4)."""

    kind = "table"

    def __init__(self, scenario_id, *, build, **kw):
        kw.setdefault("tags", ("paper",))
        super().__init__(scenario_id, **kw)
        self._build = build

    def assemble(self, values, max_cpus=None):
        return self._build()


class Table3Scenario(Scenario):
    """Table 3: ratio maxima behind the Fig 5 kiviat (shares its sweep)."""

    kind = "table"

    def __init__(self, scenario_id, **kw):
        kw.setdefault("tags", ("paper", "hpcc", "kiviat"))
        super().__init__(scenario_id, **kw)

    def machine_names(self):
        return tuple(FLAGSHIP_CPUS)

    def plan(self, max_cpus=None):
        points = []
        for name, cpus in FLAGSHIP_CPUS.items():
            p = cpus if max_cpus is None else min(cpus, max_cpus)
            points.append(SimPoint.make("hpcc", name, p))
        return points

    def run(self, max_cpus=None):
        return self._assemble_results(flagship_results(max_cpus))

    def assemble(self, values, max_cpus=None):
        return self._assemble_results(tuple(values))

    def _assemble_results(self, results):
        data = kiviat_normalise(results)
        rows = []
        for col in data.columns:
            unit = TABLE3_UNITS[col]
            rows.append((col, f"{data.maxima[col]:.4g}"
                         + (f" {unit}" if unit else "")))
        return TableResult(
            table_id="table3",
            title="Ratio values corresponding to 1 in Fig 5",
            headers=("Ratio", "Maximum value"),
            rows=tuple(rows),
            notes="Paper values: 8.729 TF/s; 1.925; 0.020; 0.039 B/F; "
                  "2.893 B/F; 0.094 B/F; 0.197 1/us; 4.9e-5 Update/F.",
        )


class Table4Scenario(StaticTableScenario):
    """Table 4: analytic energy ranking; exposes energy perf metrics."""

    def machine_names(self):
        from ..analysis.energy import energy_ranking
        return tuple(p.machine for p in energy_ranking())

    def perf_values(self, result):
        # The table rows are formatted strings; references check the
        # underlying analytic profile (always full-scale — table 4 is
        # never capped, so these hold even under --max-cpus).
        from ..analysis.energy import energy_ranking
        return {
            p.machine: {
                "hpl_gflops": p.hpl_gflops,
                "mflops_per_w": p.mflops_per_w,
                "power_kw": p.power_kw,
            }
            for p in energy_ranking()
        }


# ---------------------------------------------------------------------------
# Table builders (tables 1, 2, 4 — verbatim from harness/tables.py)
# ---------------------------------------------------------------------------

def _build_table1():
    params = get_machine("altix_nl4").extra["table1"]
    return TableResult(
        table_id="table1",
        title="Architecture parameters of SGI Altix BX2",
        headers=("Characteristics", "SGI Altix BX2"),
        rows=tuple((k, v) for k, v in params.items()),
    )


def _build_table2():
    headers = (
        "Platform", "Type", "CPUs/node", "Clock (GHz)", "Peak/node (Gflop/s)",
        "Network", "Network topology", "Operating system", "Location",
        "Processor vendor", "System vendor",
    )
    rows = []
    for m in PAPER_FIVE:
        rows.append((
            m.label,
            m.system_type,
            m.node.cpus,
            m.processor.clock_ghz,
            m.peak_node_gflops,
            m.network.name,
            m.topology_label,
            m.operating_system,
            m.location,
            m.processor_vendor,
            m.system_vendor,
        ))
    return TableResult(
        table_id="table2",
        title="System characteristics of the five computing platforms",
        headers=headers,
        rows=tuple(rows),
    )


def _build_table4():
    from ..analysis.energy import energy_ranking

    headers = ("Rank", "Platform", "CPUs", "HPL (Gflop/s)", "Power (kW)",
               "Mflop/s per W", "Energy (MJ)", "EDP (MJ*s)")
    rows = []
    for rank, prof in enumerate(energy_ranking(), start=1):
        rows.append((
            rank,
            prof.label,
            prof.nprocs,
            f"{prof.hpl_gflops:.4g}",
            f"{prof.power_kw:.4g}",
            f"{prof.mflops_per_w:.4g}",
            f"{prof.energy_j / 1e6:.4g}",
            f"{prof.edp_js / 1e6:.4g}",
        ))
    return TableResult(
        table_id="table4",
        title="Modelled HPL energy efficiency of all simulated machines",
        headers=headers,
        rows=tuple(rows),
        notes="Not in the paper. Sustained HPL at each machine's maximum "
              "CPUs; power = busy cores + per-node memory/NIC floors "
              "(see docs/MODEL.md section 13 for the watt provenance).",
    )


# ---------------------------------------------------------------------------
# The registry entries
# ---------------------------------------------------------------------------

def _imb_scenario(fig_id):
    bench, fld, ylabel = IMB_FIGURES[fig_id]
    refs = {}
    tol = None
    requires_full_refs = True
    if fig_id == "fig06":
        tol = ToleranceSpec(
            rtol=0.02,
            anchors=(("Barrier latency grows ~log P on the scalar clusters",
                      None),))
        refs = {"sx8": {"y_last": Reference(68.0, 0.05, 0.05)}}
    elif fig_id == "fig12":
        tol = ToleranceSpec(
            anchors=(("Alltoall 1MB: IXS crossbar sustains the highest "
                      "per-CPU rate", "sx8"),))
        refs = {"sx8": {"y_last": Reference(679628.32, 0.02, 0.02)}}
    return IMBFigureScenario(
        fig_id, benchmark=bench, field=fld, ylabel=ylabel,
        title=f"IMB {bench} vs CPU count",
        tolerance=tol, references=refs,
        requires_full_refs=requires_full_refs)


def make_builtin_scenarios() -> tuple[Scenario, ...]:
    """Fresh instances of all 20 builtin scenarios, in canonical order."""
    scenarios = [
        SweepFigureScenario(
            "fig01", point_kind="ring_hpl", point_params={"n_rings": 4},
            sweep_fn=_ring_hpl_sweep, build=_build_fig01,
            title="Accumulated random-ring bandwidth vs HPL",
            requires_full_refs=True),
        SweepFigureScenario(
            "fig02", point_kind="ring_hpl", point_params={"n_rings": 4},
            sweep_fn=_ring_hpl_sweep, build=_build_fig02,
            title="Random-ring bandwidth / HPL ratio (B/KFlop)",
            tolerance=ToleranceSpec(
                anchors=(("SX-8 ~60 B/KFlop random-ring balance, flat to "
                          "576 CPUs", "sx8"),)),
            references={
                "sx8": {"y_last": Reference(60.0, 0.06, 0.06)},
                "altix_nl3": {"y_last": Reference(94.0, 0.05, 0.05)},
            },
            requires_full_refs=True),
        SweepFigureScenario(
            "fig03", point_kind="stream_hpl", point_params={},
            sweep_fn=_stream_hpl_sweep, build=_build_fig03,
            title="Accumulated EP-STREAM Copy vs HPL",
            tolerance=ToleranceSpec(
                anchors=(("EP-STREAM per-CPU balance ordering: SX-8 > X1 > "
                          "scalar clusters", None),)),
            references={"sx8": {"y_last": Reference(23616.0, 0.02, 0.02)}},
            requires_full_refs=True),
        SweepFigureScenario(
            "fig04", point_kind="stream_hpl", point_params={},
            sweep_fn=_stream_hpl_sweep, build=_build_fig04,
            title="EP-STREAM Copy / HPL ratio (Byte/Flop)",
            requires_full_refs=True),
        KiviatScenario(
            "fig05", title="All benchmarks normalised with HPL (kiviat)",
            tolerance=ToleranceSpec(
                requires_full=True,
                notes="Kiviat normalisation runs the flagship "
                      "configurations only."),
            references={"sx8": {"y_max": Reference(1.0, 0.0, 0.0)}},
            requires_full_refs=True),
    ]
    scenarios.extend(_imb_scenario(fid) for fid in IMB_FIGURES)
    scenarios.append(EnergyKiviatScenario(
        "fig16", title="Energy efficiency kiviat (modelled)",
        tolerance=ToleranceSpec(
            requires_full=True,
            anchors=(("Blue Gene/P dominates the efficiency axes of the "
                      "energy kiviat", None),),
            notes="Energy kiviat profiles each machine at min(cap, "
                  "max_cpus), so capped runs regenerate different "
                  "profiles; committed values are the full-scale ranking. "
                  "Tier-1 tests regenerate it at full scale (analytic, "
                  "milliseconds); table4 covers the energy surface in "
                  "capped CI runs."),
        references={"bluegene_p": {"y_max": Reference(1.0, 0.0, 0.0)}},
        requires_full_refs=True))
    scenarios.extend([
        StaticTableScenario(
            "table1", build=_build_table1,
            title="Architecture parameters of SGI Altix BX2",
            tolerance=ToleranceSpec(
                mode="exact",
                notes="Static HPCC challenge-class listing; no simulation "
                      "enters it.")),
        StaticTableScenario(
            "table2", build=_build_table2,
            title="System characteristics of the five platforms",
            tolerance=ToleranceSpec(
                mode="exact",
                notes="Machine/topology description table, straight from "
                      "the specs.")),
        Table3Scenario(
            "table3", title="Ratio values corresponding to 1 in Fig 5",
            tolerance=ToleranceSpec(
                requires_full=True,
                anchors=(("SX-8 leads bandwidth-normalised ratios at "
                          "flagship scale", None),),
                notes="Ratio maxima at the flagship configurations "
                      "(440/576/512/64/48 CPUs); a capped run regenerates "
                      "different configurations, so comparison requires "
                      "the full sweep.")),
        Table4Scenario(
            "table4", build=_build_table4,
            title="Modelled HPL energy-efficiency ranking",
            tags=("paper", "energy"),
            tolerance=ToleranceSpec(
                mode="exact",
                anchors=(("Blue Gene/P leads the modelled Mflop/s-per-W "
                          "ranking", None),),
                notes="Fully analytic energy ranking (closed-form HPL + "
                      "PowerModel watts); never capped, so it gates "
                      "exactly even under --max-cpus."),
            references={
                "bluegene_p": {
                    "mflops_per_w": Reference(328.6, 0.005, 0.005),
                    "hpl_gflops": Reference(10599.28, 0.005, 0.005),
                },
                "gige": {"mflops_per_w": Reference(63.32, 0.01, 0.01)},
            }),
    ])
    return tuple(scenarios)


#: Canonical paper item ids, in manifest/harness order.
PAPER_FIGURE_IDS = tuple(f"fig{i:02d}" for i in range(1, 17))
PAPER_TABLE_IDS = ("table1", "table2", "table3", "table4")
