"""Declarative scenario registry (ReFrame-style checks).

One :class:`Scenario` object — or one TOML file — declares machines,
benchmark, rank grid, metric extractors, and per-machine references
with asymmetric ``(value, lower_tol, upper_tol)`` tolerances.  The
registry auto-discovers builtins plus ``scenarios/*.toml`` (and
``REPRO_SCENARIO_PATH``), fans scenarios out through the ambient
:class:`~repro.exec.SweepExecutor`, and feeds the ``repro.validate``
gate; ``results/TOLERANCES.json`` is generated from these specs.

See docs/MODEL.md §14 for the spec schema and discovery rules.
"""

from .registry import (
    REPO_SCENARIO_DIR,
    SCENARIO_PATH_ENV,
    all_scenarios,
    get_scenario,
    has_scenario,
    paper_scenarios,
    reload_scenarios,
    scenario_ids,
)
from .runner import (
    ScenarioCheck,
    ScenarioSuiteReport,
    check_scenario,
    check_scenarios,
    run_scenario,
)
from .spec import (
    RankGrid,
    Reference,
    Scenario,
    ScenarioError,
    ToleranceSpec,
)

__all__ = [
    "RankGrid",
    "Reference",
    "REPO_SCENARIO_DIR",
    "SCENARIO_PATH_ENV",
    "Scenario",
    "ScenarioCheck",
    "ScenarioError",
    "ScenarioSuiteReport",
    "ToleranceSpec",
    "all_scenarios",
    "check_scenario",
    "check_scenarios",
    "get_scenario",
    "has_scenario",
    "paper_scenarios",
    "reload_scenarios",
    "run_scenario",
    "scenario_ids",
]
