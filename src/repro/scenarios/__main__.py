"""Scenario registry CLI.

Examples::

    python -m repro.scenarios list
    python -m repro.scenarios run fig12 app_cg --max-cpus 64 --out out/
    python -m repro.scenarios check --max-cpus 64
    python -m repro.scenarios emit-manifest
    python -m repro.scenarios check-manifest

Exit codes follow the harness conventions: 0 ok, 2 usage error (unknown
scenario id, malformed TOML, bad flags), 3 reference-check failure or
manifest drift.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..config import ReproConfig
from ..core.errors import ConfigError
from ..exec import using_executor
from .manifest_sync import check_manifest_sync, write_manifest
from .registry import all_scenarios, get_scenario, scenario_ids
from .runner import check_scenario, run_scenario
from .spec import ScenarioError

#: Default manifest location: repo results/TOLERANCES.json.
DEFAULT_MANIFEST = (Path(__file__).resolve().parents[3]
                    / "results" / "TOLERANCES.json")


def _add_exec_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--max-cpus", type=int, default=None,
                   help="cap CPU sweeps (default: full scale)")
    p.add_argument("--jobs", "-j", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS, else CPUs)")
    p.add_argument("--engine-backend", default=None, metavar="NAME")
    p.add_argument("--exec-backend", default=None, metavar="NAME")
    p.add_argument("--no-cache", action="store_true", default=None,
                   help="disable the on-disk result cache")
    p.add_argument("--cache-dir", default=None)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List, run, and check declarative scenarios.")
    sub = ap.add_subparsers(dest="cmd")

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", default=None,
                        help="only scenarios carrying this tag")

    p_run = sub.add_parser("run", help="regenerate scenarios by id")
    p_run.add_argument("ids", nargs="+", metavar="ID")
    p_run.add_argument("--out", default=None,
                       help="directory for CSV/TXT exports")
    _add_exec_flags(p_run)

    p_check = sub.add_parser(
        "check", help="run scenarios and judge their references")
    p_check.add_argument("ids", nargs="*", metavar="ID",
                         help="default: every registered scenario")
    _add_exec_flags(p_check)

    p_emit = sub.add_parser(
        "emit-manifest",
        help="regenerate results/TOLERANCES.json from the registry")
    p_emit.add_argument("--path", default=str(DEFAULT_MANIFEST))

    p_sync = sub.add_parser(
        "check-manifest",
        help="verify the committed manifest matches the registry")
    p_sync.add_argument("--path", default=str(DEFAULT_MANIFEST))

    args = ap.parse_args(argv)
    if args.cmd is None:
        ap.print_help()
        return 2
    try:
        return _dispatch(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.cmd == "list":
        rows = [s for s in all_scenarios()
                if args.tag is None or args.tag in s.tags]
        for s in rows:
            src = "builtin" if s.source == "builtin" else Path(s.source).name
            tags = ",".join(s.tags) or "-"
            print(f"{s.scenario_id:24} {s.kind:6} {src:24} [{tags}] "
                  f"{s.title}")
        print(f"[{len(rows)} scenarios]")
        return 0

    if args.cmd == "emit-manifest":
        write_manifest(args.path)
        print(f"[tolerance manifest -> {args.path}]")
        return 0

    if args.cmd == "check-manifest":
        ok, msg = check_manifest_sync(args.path)
        print(msg if ok else f"error: {msg}", file=None if ok else sys.stderr)
        return 0 if ok else 3

    # run / check need an executor.
    try:
        config = ReproConfig.from_env_and_args(args)
        config.apply_engine_backend()
    except (ConfigError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    executor = config.make_executor()

    if args.cmd == "run":
        scenarios = [get_scenario(i) for i in args.ids]  # fail before running
        try:
            with using_executor(executor):
                for s in scenarios:
                    result = run_scenario(s, max_cpus=args.max_cpus)
                    _render(result, args.out)
        finally:
            executor.close()
        return 0

    if args.cmd == "check":
        ids = args.ids or list(scenario_ids())
        scenarios = [get_scenario(i) for i in ids]
        failed = 0
        try:
            with using_executor(executor):
                for s in scenarios:
                    verdict = check_scenario(s, max_cpus=args.max_cpus)
                    mark = {"ok": "OK", "fail": "FAIL",
                            "uncovered": "UNCOVERED"}[verdict.status]
                    print(f"{verdict.scenario_id:24} {mark:9} "
                          f"{verdict.detail}")
                    for c in verdict.checks:
                        if c["status"] == "fail":
                            print(f"    {c['machine']}.{c['metric']}: "
                                  f"{c.get('detail', 'missing')}",
                                  file=sys.stderr)
                    if not verdict.ok:
                        failed += 1
        finally:
            executor.close()
        print(f"[{len(scenarios) - failed}/{len(scenarios)} scenarios ok]")
        return 3 if failed else 0

    raise AssertionError(f"unhandled command {args.cmd!r}")


def _render(result, out_dir: str | None) -> None:
    from ..harness.report import (render_figure, render_table, save_figure,
                                  save_table)

    if hasattr(result, "table_id"):
        print(render_table(result))
        if out_dir:
            save_table(result, out_dir)
    else:
        print(render_figure(result))
        if out_dir:
            save_figure(result, out_dir)
    print()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
