"""Declarative scenario specification (ReFrame-style checks).

A :class:`Scenario` is one declarative object describing a complete
reproduction experiment: which machines run, which benchmark, over which
rank grid, which metrics are extracted, and — per machine — reference
values with *asymmetric* tolerances.  Scenarios fan out through the
ambient :class:`~repro.exec.SweepExecutor` (so ``--jobs``, exec
backends, and the on-disk cache all apply) and are checked by the
``repro.validate`` gate.

Reference semantics (mirroring ReFrame's ``(value, lower, upper)``
convention): a reference ``(v, lo, hi)`` accepts any measured ``x`` with

    v - lo * |v|  <=  x  <=  v + hi * |v|

where ``lo``/``hi`` are non-negative fractions and ``None`` leaves that
side unbounded.  Bounds are inclusive; the scaling by ``|v|`` keeps the
interval orientation correct for negative reference values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.errors import ConfigError


class ScenarioError(ConfigError):
    """Raised for malformed, unknown, or colliding scenario definitions."""


# ---------------------------------------------------------------------------
# References and tolerances
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Reference:
    """A per-machine expected value with asymmetric fractional tolerance."""

    value: float
    lower_tol: float | None = None
    upper_tol: float | None = None

    def __post_init__(self):
        if not math.isfinite(self.value):
            raise ScenarioError(f"reference value must be finite, got {self.value!r}")
        for name in ("lower_tol", "upper_tol"):
            tol = getattr(self, name)
            if tol is None:
                continue
            if not math.isfinite(tol) or tol < 0:
                raise ScenarioError(
                    f"reference {name} must be a non-negative fraction or "
                    f"None, got {tol!r}")

    def bounds(self) -> tuple[float | None, float | None]:
        """Inclusive (lower, upper) bounds; ``None`` means unbounded."""
        scale = abs(self.value)
        lo = None if self.lower_tol is None else self.value - self.lower_tol * scale
        hi = None if self.upper_tol is None else self.value + self.upper_tol * scale
        return lo, hi

    def check(self, actual: float) -> str:
        """Classify a measurement: ``"ok"``, ``"below"``, or ``"above"``."""
        lo, hi = self.bounds()
        if lo is not None and actual < lo:
            return "below"
        if hi is not None and actual > hi:
            return "above"
        return "ok"

    def to_json(self) -> list:
        return [self.value, self.lower_tol, self.upper_tol]

    @classmethod
    def from_obj(cls, obj) -> "Reference":
        """Parse ``value`` / ``[value]`` / ``[value, lo]`` / ``[value, lo, hi]``."""
        if isinstance(obj, (int, float)) and not isinstance(obj, bool):
            return cls(float(obj))
        if isinstance(obj, (list, tuple)) and 1 <= len(obj) <= 3:
            vals = list(obj) + [None] * (3 - len(obj))
            value, lo, hi = vals
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(f"reference value must be a number, got {value!r}")
            def tol(t):
                if t is None:
                    return None
                if not isinstance(t, (int, float)) or isinstance(t, bool):
                    raise ScenarioError(f"reference tolerance must be a number or null, got {t!r}")
                return float(t)
            return cls(float(value), tol(lo), tol(hi))
        raise ScenarioError(
            f"malformed reference {obj!r}: expected a number or "
            "[value, lower_tol, upper_tol]")


@dataclass(frozen=True)
class ToleranceSpec:
    """The scenario's entry in the golden-diff tolerance manifest.

    Mirrors :class:`repro.validate.manifest.ToleranceRule` but lives on
    the scenario so ``results/TOLERANCES.json`` can be *generated* from
    the registry (``repro.scenarios.manifest_sync``).  ``None`` fields
    fall through to the manifest's per-kind defaults.
    """

    mode: str | None = None            # "rel" | "exact" | "ordering"
    rtol: float | None = None
    requires_full: bool = False
    anchors: tuple[tuple[str, str | None], ...] = ()
    notes: str = ""

    def __post_init__(self):
        if self.mode not in (None, "rel", "exact", "ordering"):
            raise ScenarioError(f"unknown tolerance mode {self.mode!r}")

    def manifest_entry(self) -> dict:
        """The item entry exactly as written to TOLERANCES.json."""
        entry: dict = {}
        if self.mode is not None:
            entry["mode"] = self.mode
        if self.rtol is not None:
            entry["rtol"] = self.rtol
        if self.requires_full:
            entry["requires_full"] = True
        if self.anchors:
            entry["anchors"] = [
                {"name": name} if machine is None else
                {"name": name, "machine": machine}
                for name, machine in self.anchors
            ]
        if self.notes:
            entry["notes"] = self.notes
        return entry


# ---------------------------------------------------------------------------
# Rank grids
# ---------------------------------------------------------------------------

def cap_cpus(machine, max_cpus: int | None, floor: int = 2) -> int:
    """The largest CPU count a machine contributes under a global cap."""
    cap = machine.max_cpus if max_cpus is None else min(max_cpus, machine.max_cpus)
    return max(cap, floor)


@dataclass(frozen=True)
class RankGrid:
    """Which CPU counts a scenario sweeps on each machine.

    With explicit ``counts`` the grid is those values filtered by the
    machine's (possibly capped) maximum; otherwise it is the machine's
    power-of-two sweep from ``start``.
    """

    start: int = 2
    counts: tuple[int, ...] = ()

    def __post_init__(self):
        if self.start < 1:
            raise ScenarioError(f"rank grid start must be >= 1, got {self.start}")
        if any((not isinstance(c, int)) or c < 1 for c in self.counts):
            raise ScenarioError(f"rank grid counts must be positive ints, got {self.counts!r}")

    def resolve(self, machine, max_cpus: int | None) -> list[int]:
        cap = cap_cpus(machine, max_cpus, floor=min(self.counts) if self.counts else self.start)
        if self.counts:
            picked = [c for c in sorted(set(self.counts)) if c <= cap]
            if not picked:
                raise ScenarioError(
                    f"rank grid {sorted(set(self.counts))} has no count <= "
                    f"{cap} on machine {machine.name!r}")
            return picked
        return machine.cpu_counts(start=self.start, maximum=cap)


# ---------------------------------------------------------------------------
# Scenario base class
# ---------------------------------------------------------------------------

class Scenario:
    """Base class for declarative scenarios.

    Subclasses implement :meth:`plan` (the SimPoint fan-out) and
    :meth:`assemble` (points' values -> FigureResult/TableResult).
    ``run()`` wires the two through the ambient executor; scenarios
    whose points are shared with siblings (e.g. fig01/fig02 share one
    sweep) may override ``run()`` directly with a memoised path.
    """

    #: "figure" or "table" — decides rendering and artifact naming.
    kind = "figure"
    #: Where the scenario came from: "builtin" or the TOML file path.
    source = "builtin"

    def __init__(self, scenario_id: str, *, title: str = "",
                 description: str = "", tags: tuple[str, ...] = (),
                 tolerance: ToleranceSpec | None = None,
                 references: dict[str, dict[str, Reference]] | None = None,
                 requires_full_refs: bool = False):
        if not scenario_id or not isinstance(scenario_id, str):
            raise ScenarioError(f"scenario id must be a non-empty string, got {scenario_id!r}")
        self.scenario_id = scenario_id
        self.title = title
        self.description = description
        self.tags = tuple(tags)
        self.tolerance = tolerance
        self.references = dict(references or {})
        #: True when references are only meaningful at full scale (sweep
        #: endpoints move under ``max_cpus`` caps).
        self.requires_full_refs = requires_full_refs

    # -- execution ---------------------------------------------------------

    def plan(self, max_cpus: int | None = None) -> list:
        """The scenario's SimPoint fan-out (may be empty for analytic ones)."""
        return []

    def assemble(self, values: list, max_cpus: int | None = None):
        raise NotImplementedError

    def run(self, max_cpus: int | None = None):
        from ..exec import get_executor
        points = self.plan(max_cpus)
        values = list(get_executor().run_points(points)) if points else []
        return self.assemble(values, max_cpus)

    # -- metrics -----------------------------------------------------------

    def perf_values(self, result) -> dict[str, dict[str, float]]:
        """machine -> metric name -> measured value, for reference checks.

        The default extracts endpoint/extremum metrics from figure
        series; table scenarios override this to expose their columns.
        """
        out: dict[str, dict[str, float]] = {}
        series = getattr(result, "series", None)
        if series:
            for s in series:
                out[s.machine] = {
                    "y_first": s.y[0], "y_last": s.y[-1],
                    "y_min": min(s.y), "y_max": max(s.y),
                }
        return out

    # -- introspection -----------------------------------------------------

    def machine_names(self) -> tuple[str, ...]:
        return ()

    def describe(self) -> dict:
        return {
            "id": self.scenario_id,
            "kind": self.kind,
            "source": self.source,
            "title": self.title,
            "tags": list(self.tags),
            "machines": list(self.machine_names()),
            "references": {
                m: {metric: ref.to_json() for metric, ref in refs.items()}
                for m, refs in self.references.items()
            },
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.scenario_id!r}>"


def parse_references(obj, *, where: str = "") -> dict[str, dict[str, Reference]]:
    """Parse ``{machine: {metric: ref}}`` from TOML/JSON data."""
    if obj is None:
        return {}
    ctx = f" in {where}" if where else ""
    if not isinstance(obj, dict):
        raise ScenarioError(f"references{ctx} must be a table, got {type(obj).__name__}")
    out: dict[str, dict[str, Reference]] = {}
    for machine, metrics in obj.items():
        if not isinstance(metrics, dict):
            raise ScenarioError(
                f"references[{machine!r}]{ctx} must map metric -> reference")
        out[str(machine)] = {
            str(metric): Reference.from_obj(ref)
            for metric, ref in metrics.items()
        }
    return out
