"""TOML scenario files: the zero-code extension point.

One TOML file declares one scenario — machines (catalog names or
user-defined projections of a catalog base), a workload (an IMB
benchmark with optional fault injection, a ``repro.apps`` mini-app, or
the full HPCC suite), a rank grid, the metric to plot, and optional
per-machine references.  Example::

    [scenario]
    id = "fat_xeon_alltoall"
    title = "Alltoall on a projected 4096-CPU Xeon cluster"

    [machines.fat_xeon]
    base = "xeon"
    max_cpus = 4096
    label = "Projected fat Xeon"

    [workload]
    kind = "imb"
    benchmark = "Alltoall"

    [grid]
    counts = [64, 256, 1024, 4096]

Malformed files raise :class:`~repro.scenarios.spec.ScenarioError` with
the offending file and key — never a bare traceback — so a typo in a
user scenario reads as a usage error.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, replace
from pathlib import Path

from ..exec import SimPoint
from ..machine import get_machine
from .spec import (RankGrid, Reference, Scenario, ScenarioError,
                   ToleranceSpec, parse_references)

_WORKLOAD_KINDS = ("imb", "app", "hpcc")
_APPS = ("cg", "spectral", "amr")
_FAULT_KINDS = ("slow_node", "degrade_core", "add_latency")

#: Default metric per workload kind (overridable via ``workload.metric``).
_DEFAULT_METRIC = {"imb": "time_us", "app": "elapsed", "hpcc": "hpl_tflops"}

_DEFAULT_YLABEL = {
    "time_us": "time (us/call)",
    "bandwidth_mbs": "bandwidth (MB/s)",
    "elapsed": "elapsed (s)",
    "comm_fraction": "communication fraction",
}


@dataclass(frozen=True)
class MachineDef:
    """A machine slot: a catalog name, or a projection of a base machine."""

    name: str
    base: str | None = None
    max_cpus: int | None = None
    label: str | None = None

    def resolve(self):
        """The MachineSpec this slot runs on (for planning/labels)."""
        if self.base is None:
            return get_machine(self.name)
        m = get_machine(self.base).scaled(self.max_cpus, name=self.name)
        if self.label is not None:
            m = replace(m, label=self.label)
        return m

    def point_params(self) -> dict:
        """SimPoint params letting workers rebuild the machine.

        User-defined machines exist only in their TOML file, so the
        projection recipe rides on the point (salting the cache key —
        two projections with different sizes never share entries).
        """
        if self.base is None:
            return {}
        params = {"machine_base": self.base, "machine_cpus": self.max_cpus}
        if self.label is not None:
            params["machine_label"] = self.label
        return params


class PointSweepScenario(Scenario):
    """Generic declarative scenario: workload x machines x rank grid."""

    def __init__(self, scenario_id, *, machines, workload, grid, metric,
                 xlabel="CPUs", ylabel=None, **kw):
        super().__init__(scenario_id, **kw)
        self.machines = tuple(machines)
        self.workload = dict(workload)
        self.grid = grid
        self.metric = metric
        self.xlabel = xlabel
        self.ylabel = ylabel or _DEFAULT_YLABEL.get(metric, metric)

    def machine_names(self):
        return tuple(md.name for md in self.machines)

    def _point_params(self, md: MachineDef) -> dict:
        w = self.workload
        params = dict(md.point_params())
        if w["kind"] == "imb":
            params["benchmark"] = w["benchmark"]
            params["msg_bytes"] = w.get("msg_bytes", 1024 * 1024)
            fault = w.get("fault")
            if fault:
                params["fault"] = fault["kind"]
                for key in ("node", "factor", "level", "extra_us"):
                    if key in fault:
                        params[f"fault_{key}"] = fault[key]
        elif w["kind"] == "app":
            params["app"] = w["app"]
        return params

    def _point_kind(self) -> str:
        return {"imb": "imb", "app": "app", "hpcc": "hpcc"}[self.workload["kind"]]

    def _plan(self, max_cpus):
        kind = self._point_kind()
        plan = []
        points = []
        for md in self.machines:
            m = md.resolve()
            counts = self.grid.resolve(m, max_cpus)
            plan.append((md, m, counts))
            params = self._point_params(md)
            points.extend(SimPoint.make(kind, md.name, p, **params)
                          for p in counts)
        return plan, points

    def plan(self, max_cpus=None):
        return self._plan(max_cpus)[1]

    def _metric_of(self, value):
        if self.metric == "hpl_tflops" and hasattr(value, "hpl"):
            return value.hpl.tflops
        try:
            out = getattr(value, self.metric)
        except AttributeError:
            raise ScenarioError(
                f"scenario {self.scenario_id!r}: workload result "
                f"{type(value).__name__} has no metric {self.metric!r}"
            ) from None
        if out is None:
            raise ScenarioError(
                f"scenario {self.scenario_id!r}: metric {self.metric!r} is "
                f"not reported by this workload")
        return float(out)

    def assemble(self, values, max_cpus=None):
        from ..harness.results import FigureResult, FigureSeries

        plan, _points = self._plan(max_cpus)
        it = iter(values)
        series = []
        for md, m, counts in plan:
            results = [next(it) for _ in counts]
            series.append(FigureSeries(
                machine=md.name,
                label=m.label,
                x=tuple(float(p) for p in counts),
                y=tuple(self._metric_of(r) for r in results),
            ))
        return FigureResult(
            fig_id=self.scenario_id,
            title=self.title or self.scenario_id,
            xlabel=self.xlabel,
            ylabel=self.ylabel,
            series=tuple(series),
            notes=self.description,
        )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def _err(path, msg) -> ScenarioError:
    return ScenarioError(f"scenario file {path}: {msg}")


def _check_keys(path, table: dict, allowed: tuple[str, ...], where: str):
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise _err(path, f"unknown key(s) {', '.join(map(repr, unknown))} in "
                         f"[{where}] (allowed: {', '.join(allowed)})")


def _parse_machines(path, obj) -> tuple[MachineDef, ...]:
    if not isinstance(obj, dict) or not obj:
        raise _err(path, "a non-empty [machines.<name>] table is required")
    out = []
    for name, entry in obj.items():
        if not isinstance(entry, dict):
            raise _err(path, f"[machines.{name}] must be a table")
        _check_keys(path, entry, ("base", "max_cpus", "label"),
                    f"machines.{name}")
        base = entry.get("base")
        max_cpus = entry.get("max_cpus")
        if base is not None and not isinstance(max_cpus, int):
            raise _err(path, f"[machines.{name}] with a base machine needs "
                             "an integer max_cpus")
        out.append(MachineDef(name=str(name), base=base, max_cpus=max_cpus,
                              label=entry.get("label")))
    return tuple(out)


def _parse_workload(path, obj) -> dict:
    if not isinstance(obj, dict):
        raise _err(path, "a [workload] table is required")
    _check_keys(path, obj, ("kind", "benchmark", "msg_bytes", "app",
                            "metric", "fault"), "workload")
    kind = obj.get("kind")
    if kind not in _WORKLOAD_KINDS:
        raise _err(path, f"workload.kind must be one of {_WORKLOAD_KINDS}, "
                         f"got {kind!r}")
    w: dict = {"kind": kind}
    if "metric" in obj:
        if not isinstance(obj["metric"], str):
            raise _err(path, "workload.metric must be a string")
        w["metric"] = obj["metric"]
    if kind == "imb":
        bench = obj.get("benchmark")
        if not isinstance(bench, str):
            raise _err(path, "imb workload needs workload.benchmark")
        from ..imb.framework import get_benchmark
        try:
            get_benchmark(bench)
        except Exception:
            raise _err(path, f"unknown IMB benchmark {bench!r}") from None
        w["benchmark"] = bench
        if "msg_bytes" in obj:
            if not isinstance(obj["msg_bytes"], int) or obj["msg_bytes"] < 0:
                raise _err(path, "workload.msg_bytes must be a non-negative "
                                 "integer")
            w["msg_bytes"] = obj["msg_bytes"]
        if "fault" in obj:
            w["fault"] = _parse_fault(path, obj["fault"])
    elif kind == "app":
        app = obj.get("app")
        if app not in _APPS:
            raise _err(path, f"workload.app must be one of {_APPS}, "
                             f"got {app!r}")
        w["app"] = app
    return w


def _parse_fault(path, obj) -> dict:
    if not isinstance(obj, dict):
        raise _err(path, "[workload.fault] must be a table")
    _check_keys(path, obj, ("kind", "node", "factor", "level", "extra_us"),
                "workload.fault")
    kind = obj.get("kind")
    if kind not in _FAULT_KINDS:
        raise _err(path, f"fault.kind must be one of {_FAULT_KINDS}, "
                         f"got {kind!r}")
    fault = {"kind": kind}
    if kind in ("slow_node", "degrade_core"):
        factor = obj.get("factor")
        if not isinstance(factor, (int, float)) or factor <= 0:
            raise _err(path, f"fault {kind!r} needs a positive factor")
        fault["factor"] = float(factor)
        if kind == "slow_node":
            fault["node"] = int(obj.get("node", 0))
        else:
            fault["level"] = int(obj.get("level", 0))
    else:  # add_latency
        extra = obj.get("extra_us")
        if not isinstance(extra, (int, float)) or extra < 0:
            raise _err(path, "fault 'add_latency' needs extra_us >= 0")
        fault["extra_us"] = float(extra)
    return fault


def _parse_grid(path, obj) -> RankGrid:
    if obj is None:
        return RankGrid()
    if not isinstance(obj, dict):
        raise _err(path, "[grid] must be a table")
    _check_keys(path, obj, ("start", "counts"), "grid")
    try:
        return RankGrid(start=obj.get("start", 2),
                        counts=tuple(obj.get("counts", ())))
    except ScenarioError as e:
        raise _err(path, str(e)) from None


def _parse_tolerance(path, obj) -> ToleranceSpec | None:
    if obj is None:
        return None
    if not isinstance(obj, dict):
        raise _err(path, "[tolerance] must be a table")
    _check_keys(path, obj, ("mode", "rtol", "requires_full", "notes"),
                "tolerance")
    try:
        return ToleranceSpec(
            mode=obj.get("mode"),
            rtol=obj.get("rtol"),
            requires_full=bool(obj.get("requires_full", False)),
            notes=obj.get("notes", ""))
    except ScenarioError as e:
        raise _err(path, str(e)) from None


def load_toml_scenario(path: str | Path) -> Scenario:
    """Parse one scenario TOML file into a runnable Scenario."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as e:
        raise ScenarioError(f"cannot read scenario file {path}: {e}") from None
    try:
        doc = tomllib.loads(raw.decode("utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as e:
        raise _err(path, f"invalid TOML: {e}") from None

    _check_keys(path, doc, ("scenario", "machines", "workload", "grid",
                            "references", "tolerance"), "file root")
    head = doc.get("scenario")
    if not isinstance(head, dict):
        raise _err(path, "a [scenario] table with an id is required")
    _check_keys(path, head, ("id", "kind", "title", "description", "tags",
                             "xlabel", "ylabel", "metric"), "scenario")
    sid = head.get("id")
    if not isinstance(sid, str) or not sid:
        raise _err(path, "scenario.id must be a non-empty string")
    if head.get("kind", "figure") != "figure":
        raise _err(path, "TOML scenarios currently support kind = 'figure'")
    tags = head.get("tags", [])
    if not (isinstance(tags, list) and all(isinstance(t, str) for t in tags)):
        raise _err(path, "scenario.tags must be a list of strings")

    workload = _parse_workload(path, doc.get("workload"))
    machines = _parse_machines(path, doc.get("machines"))
    grid = _parse_grid(path, doc.get("grid"))
    metric = head.get("metric", workload.get("metric",
                                             _DEFAULT_METRIC[workload["kind"]]))
    try:
        references = parse_references(doc.get("references"), where=str(path))
    except ScenarioError:
        raise
    tolerance = _parse_tolerance(path, doc.get("tolerance"))

    # Machines must resolve now so a bad catalog name fails at load time
    # with the file in the message, not deep inside a worker.
    for md in machines:
        try:
            md.resolve()
        except Exception as e:
            raise _err(path, f"machine {md.name!r}: {e}") from None

    scenario = PointSweepScenario(
        sid,
        machines=machines,
        workload=workload,
        grid=grid,
        metric=metric,
        xlabel=head.get("xlabel", "CPUs"),
        ylabel=head.get("ylabel"),
        title=head.get("title", ""),
        description=head.get("description", ""),
        tags=tuple(tags),
        tolerance=tolerance,
        references=references,
    )
    scenario.source = str(path)
    return scenario


__all__ = ["MachineDef", "PointSweepScenario", "load_toml_scenario"]
