"""The combined validation gate: golden + invariants + fuzz + ledger.

:func:`run_validation` is what both entry points call —
``python -m repro.harness --validate`` and ``python -m repro.validate``.
It composes whichever layers the caller enabled into one
:class:`~repro.validate.report.ValidationReport`, optionally writing the
machine-readable artifact CI uploads.

The ledger layer replays the run-ledger regression check (see
:mod:`repro.obs.ledger`) on the newest ledger entry.  It is *lenient* by
default — a wall-time drift on a shared CI runner prints a warning but
does not fail the gate — and strict only when asked (``ledger_strict``),
for dedicated benchmarking hosts where timing is trustworthy.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..harness.figures import ALL_FIGURES
from ..harness.tables import ALL_TABLES
from ..obs.ledger import RunLedger
from .golden import run_golden
from .manifest import load_manifest, manifest_path_for
from .metamorphic import run_invariants
from .report import ValidationReport


def check_ledger(path: str | Path, *, strict: bool = False) -> dict:
    """Digest one ledger file into the gate's ledger-layer dict."""
    ledger = RunLedger(path)
    entries = ledger.entries()
    layer = {
        "path": str(path),
        "entries": len(entries),
        "malformed": ledger.skipped,
        "strict": strict,
        "checked": False,
        "regressions": [],
        "ok": True,
    }
    if entries:
        verdict = ledger.check_regression(entries[-1])
        layer["checked"] = verdict["checked"]
        layer["regressions"] = verdict["regressions"]
        if strict and verdict["checked"] and not verdict["ok"]:
            layer["ok"] = False
    return layer


def run_validation(
    figures: list[str] | None = None,
    tables: list[str] | None = None,
    *,
    scenarios: list[str] | None = None,
    results_dir: str | Path = "results",
    manifest_path: str | Path | None = None,
    max_cpus: int | None = None,
    golden: bool = True,
    invariants: bool = True,
    fuzz_configs: int = 0,
    fuzz_seed: int = 0,
    jobs: int = 2,
    report_path: str | Path | None = None,
    ledger_path: str | Path | None = None,
    ledger_strict: bool = False,
) -> ValidationReport:
    """Run the enabled validation layers and collect one report.

    ``figures``/``tables`` default to every known item when the golden
    layer is on.  ``scenarios`` names registered scenarios whose
    declarative references are checked (asymmetric tolerances; see
    :mod:`repro.scenarios`) — reference checks that only hold at full
    scale report ``uncovered`` under a ``max_cpus`` cap, mirroring the
    golden layer's ``requires_full`` semantics.  Runs through the
    ambient executor — install one with
    :func:`repro.exec.using_executor` to parallelise or cache.
    """
    report = ValidationReport(max_cpus=max_cpus)
    if golden:
        figs = list(ALL_FIGURES) if figures is None else figures
        tabs = list(ALL_TABLES) if tables is None else tables
        manifest = load_manifest(
            manifest_path if manifest_path is not None
            else manifest_path_for(results_dir))
        report.items = run_golden(figs, tabs, results_dir=results_dir,
                                  manifest=manifest, max_cpus=max_cpus)
    if scenarios:
        from ..scenarios import check_scenarios

        suite = check_scenarios(scenarios, max_cpus=max_cpus)
        report.scenarios = suite.to_dict()
    if invariants:
        report.invariants = run_invariants(
            max_cpus=max_cpus if max_cpus is not None else 16, jobs=jobs)
    if fuzz_configs > 0:
        from .fuzz import run_fuzz

        report.fuzz = run_fuzz(seed=fuzz_seed,
                               n_configs=fuzz_configs).to_dict()
    if ledger_path is not None:
        report.ledger = check_ledger(ledger_path, strict=ledger_strict)
    if report_path is not None:
        path = Path(report_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return report
