"""Metamorphic invariants: properties no calibration change may break.

The golden gate pins *values*; these checkers pin *structure* — claims
that hold at any sweep scale, so they stay enforceable even when a
capped run leaves Fig 5 / Table 3 uncovered:

* Fig 5 normalisation: every ratio-normalised column lies in (0, 1]
  with exactly one 1.0 (the machine that defines the column maximum).
* Balance sweeps: HPL rises with CPU count, accumulated EP-STREAM is
  monotone non-decreasing (it is ``per-CPU copy x P`` by construction),
  accumulated random-ring bandwidth stays positive.  Ring bandwidth is
  deliberately *not* required monotone — the Altix inter-box collapse
  (Fig 2) is a real feature of the data.
* Determinism: serial, ``jobs=N`` and cache-warm reruns of the same
  figure are byte-identical CSV — PR 1/2's guarantee promoted into an
  enforced oracle.
* HPCC numeric verification: the PASSED/FAILED battery
  (:mod:`repro.hpcc.verification`) passes on every machine model at
  small scale, fanned out through the executor as ``hpcc_verify``
  points.
"""

from __future__ import annotations

import tempfile

from ..analysis.ratios import kiviat_violations
from ..exec import ResultCache, SimPoint, SweepExecutor, get_executor, using_executor
from ..machine.catalog import ALL_MACHINES
from .report import InvariantResult


def check_kiviat(max_cpus: int | None = 16) -> InvariantResult:
    """Fig 5 columns are properly normalised at this scale."""
    from ..harness.figures import fig05
    from .golden import clear_figure_caches

    clear_figure_caches()
    _fig, data = fig05(max_cpus=max_cpus)
    bad = kiviat_violations(data)
    return InvariantResult("kiviat_normalisation", not bad, "; ".join(bad))


def check_balance_monotone(max_cpus: int | None = 16) -> InvariantResult:
    """HPL monotone rising; accumulated STREAM monotone; ring positive."""
    from ..harness.figures import _ring_hpl_sweep, _stream_hpl_sweep
    from .golden import clear_figure_caches

    clear_figure_caches()
    bad: list[str] = []
    streams = _stream_hpl_sweep(max_cpus)
    rings = _ring_hpl_sweep(max_cpus)
    for name, pts in streams.items():
        hpls = [h for (_p, h, _v) in pts]
        accs = [v for (_p, _h, v) in pts]
        if any(b <= a for a, b in zip(hpls, hpls[1:])):
            bad.append(f"{name}: HPL not strictly increasing {hpls}")
        if any(b < a for a, b in zip(accs, accs[1:])):
            bad.append(f"{name}: accumulated STREAM decreases {accs}")
    for name, pts in rings.items():
        if any(v <= 0 for (_p, _h, v) in pts):
            bad.append(f"{name}: non-positive accumulated ring bandwidth")
    clear_figure_caches()
    return InvariantResult("balance_monotone", not bad, "; ".join(bad))


def check_determinism(fig_id: str = "fig06", max_cpus: int | None = 8,
                      jobs: int = 2) -> InvariantResult:
    """Serial == parallel == cache-warm rerun, byte for byte."""
    from ..harness.figures import imb_figure
    from ..harness.report import figure_to_csv

    with tempfile.TemporaryDirectory(prefix="repro_validate_") as tmp:
        with using_executor(SweepExecutor(jobs=1, cache=None)):
            serial = figure_to_csv(imb_figure(fig_id, max_cpus=max_cpus))
        cache = ResultCache(tmp)
        with SweepExecutor(jobs=jobs, cache=cache) as ex, using_executor(ex):
            parallel = figure_to_csv(imb_figure(fig_id, max_cpus=max_cpus))
        warm_ex = SweepExecutor(jobs=1, cache=ResultCache(tmp))
        with using_executor(warm_ex):
            cached = figure_to_csv(imb_figure(fig_id, max_cpus=max_cpus))
        stats = warm_ex.stats()
    bad: list[str] = []
    if parallel != serial:
        bad.append(f"jobs={jobs} run differs from serial run")
    if cached != serial:
        bad.append("cache-warm rerun differs from serial run")
    if stats["cache_misses"]:
        bad.append(f"warm rerun recomputed {stats['cache_misses']} points")
    return InvariantResult(
        "determinism", not bad,
        "; ".join(bad) if bad else
        f"{fig_id}: serial/jobs={jobs}/cached byte-identical "
        f"({stats['cache_hits']} cached points)")


def check_hpcc_verification(nprocs: int = 4,
                            machines: tuple[str, ...] | None = None
                            ) -> InvariantResult:
    """HPCC's numeric PASSED/FAILED battery on every machine model."""
    names = machines or tuple(m.name for m in ALL_MACHINES)
    points = [SimPoint.make("hpcc_verify", n, nprocs) for n in names]
    reports = get_executor().run_points(points)
    bad = [
        f"{rep.machine}: " + ", ".join(
            f"{i.benchmark} residual {i.residual:.3e} > {i.threshold:g}"
            for i in rep.items if not i.passed)
        for rep in reports if not rep.all_passed
    ]
    return InvariantResult(
        "hpcc_verification", not bad,
        "; ".join(bad) if bad else
        f"{len(names)} machines x {len(reports[0].items)} benchmarks PASSED")


def run_invariants(max_cpus: int | None = 16, *,
                   jobs: int = 2) -> list[InvariantResult]:
    """The full metamorphic battery (small scale by default)."""
    return [
        check_kiviat(max_cpus=max_cpus),
        check_balance_monotone(max_cpus=max_cpus),
        check_determinism(max_cpus=min(max_cpus or 8, 8), jobs=jobs),
        check_hpcc_verification(),
    ]
