"""Validation report types: per-cell verdicts, human summary, exit codes.

Every layer of the validation subsystem (golden gate, metamorphic
invariants, config fuzzer) reports into one :class:`ValidationReport`,
which renders both ways: :meth:`ValidationReport.to_dict` is the
machine-readable artifact CI uploads, :meth:`ValidationReport.summary`
is what a human reads in the job log.  Exit code 3 (distinct from the
CLIs' usage-error 2) means "the numbers moved": a regression against
the committed golden results, a broken invariant, or a fuzz failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Process exit codes of the validation CLIs.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_REGRESSION = 3

#: Cell / item statuses.
OK = "ok"
FAIL = "fail"
UNCOVERED = "uncovered"   # not comparable at this scale (requires_full etc.)
MISSING = "missing"       # golden data absent for a regenerated value


@dataclass(frozen=True)
class CellReport:
    """One compared value: a (series, index) point or a table cell."""

    item: str                    # "fig02", "table3", ...
    series: str                  # machine name, or "row<N>" for tables
    index: int                   # point index within the series / column index
    column: str                  # "x"/"y" for figures, header name for tables
    expected: object             # golden value (float or string)
    actual: object               # regenerated value
    rel_err: float | None        # relative error where numeric
    status: str                  # OK / FAIL / UNCOVERED / MISSING
    anchor: str | None = None    # paper claim this cell backs, if declared

    def to_dict(self) -> dict:
        return {
            "series": self.series,
            "index": self.index,
            "column": self.column,
            "expected": self.expected,
            "actual": self.actual,
            "rel_err": self.rel_err,
            "status": self.status,
            "anchor": self.anchor,
        }


@dataclass(frozen=True)
class ItemReport:
    """Verdict for one figure/table against its golden data."""

    item_id: str
    mode: str
    status: str                     # OK / FAIL / UNCOVERED / MISSING
    cells: tuple[CellReport, ...] = ()
    detail: str = ""

    @property
    def failed_cells(self) -> tuple[CellReport, ...]:
        return tuple(c for c in self.cells if c.status == FAIL)

    @property
    def worst_rel_err(self) -> float | None:
        errs = [c.rel_err for c in self.cells if c.rel_err is not None]
        return max(errs) if errs else None

    @property
    def broken_anchors(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for c in self.failed_cells:
            if c.anchor:
                seen.setdefault(c.anchor)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "item": self.item_id,
            "mode": self.mode,
            "status": self.status,
            "detail": self.detail,
            "cells_total": len(self.cells),
            "cells_failed": len(self.failed_cells),
            "worst_rel_err": self.worst_rel_err,
            "broken_anchors": list(self.broken_anchors),
            "cells": [c.to_dict() for c in self.cells],
        }


@dataclass(frozen=True)
class InvariantResult:
    """One metamorphic invariant's verdict."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail}


@dataclass
class ValidationReport:
    """The combined verdict of every validation layer that ran."""

    max_cpus: int | None = None
    items: list[ItemReport] = field(default_factory=list)
    invariants: list[InvariantResult] = field(default_factory=list)
    fuzz: dict | None = None     # FuzzReport.to_dict(), when the fuzzer ran
    ledger: dict | None = None   # run-ledger layer, when a ledger was checked
    scenarios: list[dict] = field(default_factory=list)  # ScenarioCheck dicts

    @property
    def golden_ok(self) -> bool:
        return all(i.status in (OK, UNCOVERED) for i in self.items)

    @property
    def scenarios_ok(self) -> bool:
        return all(s.get("status") != FAIL for s in self.scenarios)

    @property
    def invariants_ok(self) -> bool:
        return all(r.passed for r in self.invariants)

    @property
    def fuzz_ok(self) -> bool:
        return self.fuzz is None or not self.fuzz.get("failures")

    @property
    def ledger_ok(self) -> bool:
        """Lenient by default: a perf drift only fails the gate when the
        ledger layer ran in strict mode (wall time on shared CI runners
        is too noisy to block merges on by default)."""
        return self.ledger is None or self.ledger.get("ok", True)

    @property
    def ok(self) -> bool:
        return (self.golden_ok and self.invariants_ok and self.fuzz_ok
                and self.ledger_ok and self.scenarios_ok)

    def exit_code(self) -> int:
        return EXIT_OK if self.ok else EXIT_REGRESSION

    def to_dict(self) -> dict:
        return {
            "status": "pass" if self.ok else "fail",
            "max_cpus": self.max_cpus,
            "golden": {
                "status": "pass" if self.golden_ok else "fail",
                "items": [i.to_dict() for i in self.items],
            },
            "invariants": [r.to_dict() for r in self.invariants],
            "fuzz": self.fuzz,
            "ledger": self.ledger,
            "scenarios": self.scenarios,
        }

    # -- human rendering -----------------------------------------------------

    def summary(self, max_failures: int = 10) -> str:
        lines: list[str] = []
        if self.items:
            n_ok = sum(1 for i in self.items if i.status == OK)
            n_unc = sum(1 for i in self.items if i.status == UNCOVERED)
            cells = sum(len(i.cells) for i in self.items)
            worst = max((i.worst_rel_err or 0.0) for i in self.items)
            head = (f"golden gate: {n_ok}/{len(self.items)} items ok"
                    f" ({cells} cells, worst rel err {worst:.3g})")
            if n_unc:
                head += f"; {n_unc} uncovered at this scale"
            lines.append(head)
            for item in self.items:
                if item.status == OK:
                    continue
                if item.status == UNCOVERED:
                    lines.append(f"  {item.item_id:<8s} uncovered"
                                 f" ({item.detail or 'requires full-range run'})")
                    continue
                bad = item.failed_cells
                lines.append(
                    f"  {item.item_id:<8s} FAIL {len(bad)}/{len(item.cells)}"
                    f" cells; worst rel err "
                    f"{item.worst_rel_err if item.worst_rel_err is not None else float('nan'):.3g}"
                )
                for c in bad[:max_failures]:
                    loc = f"{c.series}[{c.index}].{c.column}"
                    err = (f" rel_err {c.rel_err:.3g}"
                           if c.rel_err is not None else "")
                    lines.append(f"    {loc}: expected {c.expected!r}, "
                                 f"got {c.actual!r}{err}")
                if len(bad) > max_failures:
                    lines.append(f"    ... and {len(bad) - max_failures} more")
                for a in item.broken_anchors:
                    lines.append(f"    paper anchor broken: {a}")
        if self.scenarios:
            n_ok = sum(1 for s in self.scenarios if s.get("status") == OK)
            n_unc = sum(1 for s in self.scenarios
                        if s.get("status") == UNCOVERED)
            head = (f"scenarios: {n_ok}/{len(self.scenarios)} "
                    f"reference checks ok")
            if n_unc:
                head += f"; {n_unc} uncovered at this scale"
            lines.append(head)
            for s in self.scenarios:
                if s.get("status") != FAIL:
                    continue
                lines.append(f"  {s.get('scenario'):<16s} FAIL "
                             f"{s.get('detail', '')}")
                for c in s.get("checks", []):
                    if c.get("status") == FAIL:
                        lines.append(f"    {c['machine']}.{c['metric']}: "
                                     f"{c.get('detail', 'missing')}")
        if self.invariants:
            n_pass = sum(1 for r in self.invariants if r.passed)
            lines.append(f"invariants: {n_pass}/{len(self.invariants)} passed")
            for r in self.invariants:
                if not r.passed:
                    lines.append(f"  {r.name} FAILED: {r.detail}")
        if self.fuzz is not None:
            n = self.fuzz.get("configs", 0)
            fails = self.fuzz.get("failures", [])
            lines.append(f"fuzz: {n} configs, {len(fails)} failures "
                         f"(seed {self.fuzz.get('seed')})")
            for f in fails[:max_failures]:
                lines.append(f"  config #{f['index']}: "
                             f"{'; '.join(f['violations'])}")
                if f.get("shrunk"):
                    lines.append(f"    shrunk to: {f['shrunk']}")
        if self.ledger is not None:
            led = self.ledger
            state = ("unchecked" if not led.get("checked")
                     else "ok" if not led.get("regressions") else "drift")
            mode = "strict" if led.get("strict") else "lenient"
            lines.append(f"ledger: {led.get('entries', 0)} entries, "
                         f"{state} ({mode})")
            for r in led.get("regressions", []):
                verdict = "FAILED" if led.get("strict") else "warning"
                lines.append(f"  {verdict}: {r['field']} {r['ratio']:.2f}x "
                             f"trailing median")
        lines.append("VALIDATION " + ("PASSED" if self.ok else "FAILED"))
        return "\n".join(lines)
