"""Standalone validation CLI: golden gate, invariants, config fuzzing.

Examples::

    python -m repro.validate --max-cpus 16 --jobs 4
    python -m repro.validate --figure 1 --figure 6 --table 1 --max-cpus 16
    python -m repro.validate --skip-golden --skip-invariants \\
        --fuzz 25 --fuzz-seed 42 --report fuzz.json

Exit codes: 0 all layers passed, 2 usage error, 3 regression (golden
mismatch, broken invariant, or fuzz failure).  A CI fuzz failure is
replayed locally with the same ``--fuzz N --fuzz-seed S`` pair — the
fuzzer is a pure function of the seed.
"""

from __future__ import annotations

import argparse
import sys

from ..config import ReproConfig
from ..core import sched
from ..core.errors import ConfigError
from ..exec import available_exec_backends, using_executor
from ..harness.figures import ALL_FIGURES
from ..harness.runner import (_BadId, _norm_fig, _norm_table, _resolve_ids,
                              _resolve_scenarios, check_output_paths)
from ..harness.tables import ALL_TABLES
from .gate import run_validation
from .report import EXIT_USAGE


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Validate the repository against its committed golden "
                    "results, metamorphic invariants, and a config fuzzer.",
    )
    ap.add_argument("--figure", action="append", default=[],
                    help="restrict the golden gate to this figure; repeatable")
    ap.add_argument("--table", action="append", default=[],
                    help="restrict the golden gate to this table; repeatable")
    ap.add_argument("--scenario", action="append", default=[],
                    metavar="NAME",
                    help="also check this registered scenario's declarative "
                         "references (asymmetric tolerances); repeatable")
    ap.add_argument("--all-scenarios", action="store_true",
                    help="check every registered scenario's references")
    ap.add_argument("--max-cpus", type=int, default=None,
                    help="cap CPU sweeps (items marked requires_full are "
                         "then reported uncovered, not compared)")
    ap.add_argument("--results", default="results",
                    help="golden results directory (default: %(default)s)")
    ap.add_argument("--manifest", default=None,
                    help="tolerance manifest path (default: "
                         "<results>/TOLERANCES.json)")
    ap.add_argument("--report", default=None, metavar="PATH",
                    help="write the machine-readable report JSON to PATH")
    ap.add_argument("--jobs", "-j", type=int, default=None,
                    help="worker processes for sweep points")
    ap.add_argument("--engine-backend", default=None, metavar="NAME",
                    help="scheduler backend for every simulation "
                         f"({', '.join(sched.available_backends())}; "
                         f"default: {sched.BACKEND_ENV} env var, else "
                         f"{sched.FALLBACK_BACKEND})")
    ap.add_argument("--exec-backend", default=None, metavar="NAME",
                    help="executor backend for sweep points "
                         f"({', '.join(available_exec_backends())}; "
                         "default: REPRO_EXEC_BACKEND env var, else pool "
                         "for --jobs > 1)")
    ap.add_argument("--no-cache", action="store_true", default=None,
                    help="disable the on-disk result cache")
    ap.add_argument("--cache-dir", default=None,
                    help="result cache directory (default: REPRO_CACHE_DIR "
                         "env var, else .repro_cache)")
    ap.add_argument("--skip-golden", action="store_true",
                    help="skip the golden regression gate")
    ap.add_argument("--skip-invariants", action="store_true",
                    help="skip the metamorphic invariant battery")
    ap.add_argument("--fuzz", type=int, default=0, metavar="N",
                    help="fuzz N random machine configs (default: 0 = off)")
    ap.add_argument("--fuzz-seed", type=int, default=0, metavar="S",
                    help="fuzzer seed; same seed -> same configs and "
                         "verdicts (default: %(default)s)")
    ap.add_argument("--ledger", default=None, metavar="PATH",
                    help="check the newest run-ledger entry against its "
                         "trailing history (default: off)")
    ap.add_argument("--ledger-strict", action="store_true",
                    help="fail the gate on a ledger regression instead of "
                         "warning (use on dedicated benchmarking hosts)")
    args = ap.parse_args(argv)

    try:
        figures = _resolve_ids(args.figure, _norm_fig, ALL_FIGURES, "figure")
        tables = _resolve_ids(args.table, _norm_table, ALL_TABLES, "table")
        scenarios = _resolve_scenarios(args.scenario)
    except _BadId as exc:
        print(exc, file=sys.stderr)
        return EXIT_USAGE
    if args.all_scenarios:
        from ..scenarios import scenario_ids

        scenarios = list(scenario_ids())
    err = check_output_paths(None, None, args.report)
    if err is not None:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_USAGE
    if (args.skip_golden and args.skip_invariants and args.fuzz <= 0
            and args.ledger is None):
        print("error: every validation layer is disabled "
              "(--skip-golden --skip-invariants, no --fuzz, no --ledger)",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        config = ReproConfig.from_env_and_args(args)
        config.apply_engine_backend()
        executor = config.make_executor()
    except (ConfigError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    explicit = bool(figures or tables)
    try:
        with using_executor(executor):
            report = run_validation(
                figures=figures if explicit else None,
                tables=tables if explicit else None,
                scenarios=scenarios or None,
                results_dir=args.results,
                manifest_path=args.manifest,
                max_cpus=args.max_cpus,
                golden=not args.skip_golden,
                invariants=not args.skip_invariants,
                fuzz_configs=args.fuzz,
                fuzz_seed=args.fuzz_seed,
                jobs=executor.jobs,
                report_path=args.report,
                ledger_path=args.ledger,
                ledger_strict=args.ledger_strict,
            )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        executor.close()
    print(report.summary())
    if args.report:
        print(f"[validation report -> {args.report}]")
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
