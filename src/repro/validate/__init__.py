"""Golden-result validation: regression oracles, invariants, fuzzing.

Three layers, one verdict (exit 3 = "the numbers moved"):

* :mod:`repro.validate.golden` — regenerate figures/tables through the
  executor and diff them cell-by-cell against the committed ``results/``
  under the tolerance manifest (``results/TOLERANCES.json``).
* :mod:`repro.validate.metamorphic` — structural properties that hold at
  any sweep scale: Fig 5 normalisation, balance-sweep monotonicity,
  serial/parallel/cached determinism, HPCC numeric verification.
* :mod:`repro.validate.fuzz` — seeded random machine configs run through
  a physics battery (causality, byte conservation, monotonicity), with
  failing configs shrunk to 1-minimal perturbation sets.

Entry points: ``python -m repro.harness --validate`` (golden +
invariants, shares the harness's executor flags) and
``python -m repro.validate`` (adds ``--fuzz``/``--fuzz-seed`` replay).
"""

from .gate import check_ledger, run_validation
from .golden import clear_figure_caches, compare_figure, compare_table, run_golden
from .manifest import (
    Anchor,
    Manifest,
    ToleranceRule,
    load_manifest,
    manifest_path_for,
)
from .metamorphic import run_invariants
from .report import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    CellReport,
    InvariantResult,
    ItemReport,
    ValidationReport,
)

__all__ = [
    "Anchor",
    "CellReport",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_USAGE",
    "InvariantResult",
    "ItemReport",
    "Manifest",
    "ToleranceRule",
    "ValidationReport",
    "check_ledger",
    "clear_figure_caches",
    "compare_figure",
    "compare_table",
    "load_manifest",
    "manifest_path_for",
    "run_golden",
    "run_invariants",
    "run_validation",
]
