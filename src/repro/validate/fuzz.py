"""Seeded config fuzzer: random machines, engine/physics invariants.

The calibrated catalog exercises five well-behaved corners of the
:class:`~repro.machine.system.MachineSpec` space.  This fuzzer samples
the rest — random clock/bandwidth/latency/topology perturbations plus
:mod:`repro.machine.faults` degradations — and runs a small benchmark
battery per sampled config, checking properties the *simulator* must
uphold for any physically sensible machine:

* no negative, zero or non-finite virtual times;
* causality: every traced message is delivered at or after injection,
  every compute phase ends at or after it starts;
* conservation: bytes counted by the MPI transport equal bytes seen on
  the wire by the tracer and by the network resource counters
  (``obs`` metrics vs transport vs trace — three independent ledgers);
* monotonicity: message time does not shrink with size, and degrading a
  node never speeds a synchronising collective up.

Everything is a pure function of the seed: ``run_fuzz(seed, n)`` always
samples the same configs and returns the same verdicts, so a CI failure
replays locally with ``python -m repro.validate --fuzz N --fuzz-seed S``.
Failing configs are shrunk to a 1-minimal perturbation set (no single
perturbation can be removed without the failure vanishing) before they
are reported.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from ..machine.faults import add_latency, slow_node
from ..machine.node import NodeSpec
from ..machine.processor import ProcessorSpec
from ..machine.system import MachineSpec, NetworkSpec
from ..imb.suite import run_benchmark
from ..mpi.cluster import Cluster
from ..obs.metrics import MetricsRegistry, using_metrics

# ---------------------------------------------------------------------------
# The perturbation space
# ---------------------------------------------------------------------------

#: Multiplicative perturbations, sampled log-uniformly in [lo, hi].
SCALE_FIELDS: dict[str, tuple[float, float]] = {
    "network.link_gbs": (0.25, 4.0),
    "network.nic_gbs": (0.25, 4.0),
    "network.base_latency_us": (0.25, 8.0),
    "network.per_hop_latency_us": (0.25, 8.0),
    "network.send_overhead_us": (0.5, 4.0),
    "network.recv_overhead_us": (0.5, 4.0),
    "node.shm_flow_gbs": (0.25, 4.0),
    "node.shm_latency_us": (0.25, 8.0),
    "node.memcpy_gbs": (0.25, 4.0),
    "processor.peak_gflops": (0.25, 4.0),
    "processor.stream_copy_gbs": (0.25, 4.0),
}

#: Discrete perturbations, sampled uniformly from the options.
CHOICE_FIELDS: dict[str, tuple] = {
    "network.eager_threshold": (0, 1024, 8192, 65536),
    "network.bw_efficiency": (0.5, 0.7, 0.9, 1.0),
    "network.duplex_factor": (1.0, 1.3, 2.0),
    "node.cpus": (1, 2, 4, 8),
    "topology": ("crossbar", "hypercube", "fattree", "torus3d", "multistage"),
}

#: Live-fabric degradations (repro.machine.faults), applied post-build.
FAULT_FIELDS: dict[str, tuple[float, float]] = {
    "fault.slow_node": (1.5, 8.0),        # divide node 0's bandwidth
    "fault.extra_latency_us": (1.0, 20.0),  # add wire latency everywhere
}

#: Rank count the battery runs at (fits every sampled node size).
FUZZ_MAX_CPUS = 16


@dataclass(frozen=True)
class FuzzCase:
    """One sampled configuration: seed provenance + its perturbations."""

    seed: int
    index: int
    perturbations: tuple[tuple[str, object], ...]

    def get(self, key: str, default=None):
        for k, v in self.perturbations:
            if k == key:
                return v
        return default

    def without(self, key: str) -> "FuzzCase":
        return replace(self, perturbations=tuple(
            (k, v) for k, v in self.perturbations if k != key))

    def label(self) -> str:
        ps = ", ".join(f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                       for k, v in self.perturbations)
        return f"seed={self.seed}#{self.index}[{ps or 'baseline'}]"

    def to_dict(self) -> dict:
        return {"seed": self.seed, "index": self.index,
                "perturbations": {k: v for k, v in self.perturbations}}

    @classmethod
    def from_dict(cls, doc: dict) -> "FuzzCase":
        return cls(seed=doc["seed"], index=doc["index"],
                   perturbations=tuple(sorted(doc["perturbations"].items())))


def base_machine() -> MachineSpec:
    """The unperturbed reference box (round numbers, 16 CPUs)."""
    return MachineSpec(
        name="fuzzbox",
        label="Fuzz Box",
        system_type="Scalar",
        processor=ProcessorSpec(
            name="FuzzProc", clock_ghz=1.0, peak_gflops=4.0, is_vector=False,
            dgemm_eff=0.9, hpl_eff=0.8, fft_eff=0.1,
            stream_copy_gbs=2.0, stream_triad_gbs=2.0,
            random_update_gups=0.01,
        ),
        node=NodeSpec(
            cpus=2, memory_gb=4.0, shm_flow_gbs=2.0, shm_node_gbs=4.0,
            shm_latency_us=0.5, memcpy_gbs=4.0,
        ),
        network=NetworkSpec(
            name="FuzzNet", topology_kind="crossbar",
            link_gbs=1.0, nic_gbs=1.0, base_latency_us=2.0,
            per_hop_latency_us=0.1, send_overhead_us=0.2,
            recv_overhead_us=0.2, eager_threshold=8192,
            bw_efficiency=1.0, duplex_factor=2.0,
        ),
        max_cpus=FUZZ_MAX_CPUS,
    )


def sample_case(rng: random.Random, seed: int, index: int) -> FuzzCase:
    """Draw one configuration; iteration order is fixed for replay."""
    perts: list[tuple[str, object]] = []
    for key in sorted(SCALE_FIELDS):
        if rng.random() < 0.4:
            lo, hi = SCALE_FIELDS[key]
            perts.append((key, math.exp(rng.uniform(math.log(lo),
                                                    math.log(hi)))))
    for key in sorted(CHOICE_FIELDS):
        if rng.random() < 0.3:
            perts.append((key, rng.choice(CHOICE_FIELDS[key])))
    for key in sorted(FAULT_FIELDS):
        if rng.random() < 0.3:
            lo, hi = FAULT_FIELDS[key]
            perts.append((key, rng.uniform(lo, hi)))
    return FuzzCase(seed=seed, index=index,
                    perturbations=tuple(sorted(perts)))


def build_machine(case: FuzzCase) -> MachineSpec:
    """Apply a case's spec-level perturbations to the base machine.

    Scaled values are clamped back into validity (per-flow shared-memory
    bandwidth may not exceed the node aggregate; fat trees need group
    sizes) so every sampled case is a *legal* spec — the fuzzer probes
    the simulator's physics, not the spec validators.
    """
    base = base_machine()
    proc, node, net = base.processor, base.node, base.network
    proc_kw: dict[str, object] = {}
    node_kw: dict[str, object] = {}
    net_kw: dict[str, object] = {}
    for key, value in case.perturbations:
        if key.startswith("fault.") or key == "topology":
            continue
        layer, fld = key.split(".", 1)
        target = {"processor": proc_kw, "node": node_kw,
                  "network": net_kw}[layer]
        if key in SCALE_FIELDS:
            current = getattr({"processor": proc, "node": node,
                               "network": net}[layer], fld)
            target[fld] = current * value
        else:
            target[fld] = value
    kind = case.get("topology")
    if kind is not None and kind != net.topology_kind:
        net_kw["topology_kind"] = kind
        if kind == "fattree":
            net_kw["group_sizes"] = (4, 4)
            net_kw["level_blocking"] = (1.0, 2.0)
        elif kind == "multistage":
            net_kw["ports"] = FUZZ_MAX_CPUS
    if node_kw:
        flow = node_kw.get("shm_flow_gbs", node.shm_flow_gbs)
        if flow > node_kw.get("shm_node_gbs", node.shm_node_gbs):
            node_kw["shm_node_gbs"] = flow
        node = replace(node, **node_kw)
    if proc_kw:
        proc = replace(proc, **proc_kw)
    if net_kw:
        net = replace(net, **net_kw)
    return replace(base, processor=proc, node=node, network=net)


def fabric_setup_for(case: FuzzCase):
    """Fault-injection hook (``Cluster.run(fabric_setup=...)``)."""
    slow = case.get("fault.slow_node")
    extra = case.get("fault.extra_latency_us")
    if slow is None and extra is None:
        return None

    def setup(fabric):
        if slow is not None:
            slow_node(fabric, 0, slow)
        if extra is not None:
            add_latency(fabric, extra * 1e-6)
        return fabric

    return setup


# ---------------------------------------------------------------------------
# The battery
# ---------------------------------------------------------------------------

def _collective_prog(comm):
    yield from comm.allreduce(nbytes=4096)
    yield from comm.barrier()
    yield from comm.alltoall(nbytes=2048)
    if comm.rank == 0:
        yield from comm.send(1, nbytes=100_000)
    elif comm.rank == 1:
        yield from comm.recv(0)
    return comm.now


def _pingpong_prog(comm, nbytes):
    if comm.rank == 0:
        yield from comm.send(1, nbytes=nbytes)
        yield from comm.recv(1)
    else:
        yield from comm.recv(0)
        yield from comm.send(0, nbytes=nbytes)
    return comm.now


def _allreduce_time_prog(comm):
    yield from comm.barrier()
    t0 = comm.now
    yield from comm.allreduce(nbytes=65536)
    return comm.now - t0


def default_checks(machine: MachineSpec, case: FuzzCase) -> list[str]:
    """Run the battery on one built machine; return invariant violations."""
    bad: list[str] = []
    setup = fabric_setup_for(case)
    p = min(8, machine.max_cpus)

    # 1. Traced + metered collective run: times, causality, conservation.
    registry = MetricsRegistry(enabled=True)
    with using_metrics(registry):
        cluster = Cluster(machine, p, trace=True)
        out = cluster.run(_collective_prog, fabric_setup=setup)
    if not (math.isfinite(out.elapsed) and out.elapsed > 0):
        bad.append(f"non-positive elapsed time {out.elapsed!r}")
    for rank, t in enumerate(out.results):
        if not (math.isfinite(t) and t >= 0):
            bad.append(f"rank {rank} finished at invalid time {t!r}")
    tracer = cluster.tracer
    for m in tracer.messages:
        if m.t_deliver < m.t_inject or m.t_inject < 0:
            bad.append(f"causality: message {m.src}->{m.dst} delivered at "
                       f"{m.t_deliver} before injection {m.t_inject}")
            break
    for c in tracer.computes:
        if c.t_end < c.t_start or c.t_start < 0:
            bad.append(f"causality: compute on rank {c.rank} ends at "
                       f"{c.t_end} before start {c.t_start}")
            break
    flat = registry.flat()
    trace_intra = sum(m.nbytes for m in tracer.messages if m.intra_node)
    trace_inter = sum(m.nbytes for m in tracer.messages if not m.intra_node)
    ledgers = [
        ("mpi.bytes.intra", trace_intra),
        ("mpi.bytes.inter", trace_inter),
        ("net.egress.bytes", trace_inter),
        ("net.ingress.bytes", trace_inter),
    ]
    for name, want in ledgers:
        got = flat.get(name, 0)
        if got != want:
            bad.append(f"conservation: {name}={got} but tracer saw {want}")
    if flat.get("engine.events", 0) <= 0:
        bad.append("engine processed no events")

    # 2. IMB measurements stay physical (finite, positive, real bandwidth).
    for bench in ("PingPong", "Allreduce"):
        res = run_benchmark(machine, bench, min(4, machine.max_cpus),
                            msg_bytes=4096)
        bad.extend(res.check())

    # 3. Message time monotone in size.
    t_small = Cluster(machine, 2).run(_pingpong_prog, 1024,
                                      fabric_setup=setup).results[0]
    t_big = Cluster(machine, 2).run(_pingpong_prog, 65536,
                                    fabric_setup=setup).results[0]
    if t_big < t_small - 1e-12:
        bad.append(f"monotonicity: 64 KiB pingpong ({t_big}) faster than "
                   f"1 KiB ({t_small})")

    # 4. A straggler can only slow a synchronising collective down.
    clean = max(Cluster(machine, p).run(_allreduce_time_prog,
                                        fabric_setup=setup).results)

    def hurt_setup(fabric):
        if setup is not None:
            setup(fabric)
        return slow_node(fabric, 0, 4.0)

    hurt = max(Cluster(machine, p).run(_allreduce_time_prog,
                                       fabric_setup=hurt_setup).results)
    if hurt < clean - 1e-12:
        bad.append(f"fault monotonicity: straggler sped allreduce up "
                   f"({clean} -> {hurt})")
    return bad


# ---------------------------------------------------------------------------
# Verdicts, shrinking, the fuzz run
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CaseVerdict:
    case: FuzzCase
    violations: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {**self.case.to_dict(), "violations": list(self.violations)}


def check_case(case: FuzzCase, checks=default_checks) -> CaseVerdict:
    """Build the machine and run the battery; crashes are findings too."""
    try:
        machine = build_machine(case)
    except Exception as exc:
        return CaseVerdict(case, (f"build-error: {exc!r}",))
    try:
        violations = tuple(checks(machine, case))
    except Exception as exc:
        violations = (f"crash: {exc!r}",)
    return CaseVerdict(case, violations)


def shrink(case: FuzzCase, checks=default_checks) -> FuzzCase:
    """Reduce a failing case to a 1-minimal perturbation set.

    Greedily drops perturbations whose removal keeps the case failing,
    restarting the scan after every successful removal; the result is a
    case from which no *single* perturbation can be removed without the
    failure disappearing.  Deterministic (keys are scanned in the case's
    sorted order).
    """
    current = case
    changed = True
    while changed:
        changed = False
        for key, _v in current.perturbations:
            candidate = current.without(key)
            if not check_case(candidate, checks).passed:
                current = candidate
                changed = True
                break
    return current


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one seeded fuzz run."""

    seed: int
    configs: int
    verdicts: tuple[CaseVerdict, ...]
    shrunk: tuple[FuzzCase, ...]   # one per failing verdict, same order

    @property
    def failures(self) -> tuple[CaseVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.passed)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        failures = []
        for verdict, small in zip(self.failures, self.shrunk):
            failures.append({
                **verdict.to_dict(),
                "shrunk": small.to_dict()["perturbations"],
                "replay": f"--fuzz {self.configs} --fuzz-seed {self.seed}",
            })
        return {
            "seed": self.seed,
            "configs": self.configs,
            "passed": self.configs - len(failures),
            "failures": failures,
        }


def run_fuzz(seed: int = 0, n_configs: int = 25,
             checks=default_checks) -> FuzzReport:
    """Sample and check ``n_configs`` machines; pure function of the seed."""
    rng = random.Random(seed)
    cases = [sample_case(rng, seed, i) for i in range(n_configs)]
    verdicts = tuple(check_case(c, checks) for c in cases)
    shrunk = tuple(shrink(v.case, checks)
                   for v in verdicts if not v.passed)
    return FuzzReport(seed=seed, configs=n_configs,
                      verdicts=verdicts, shrunk=shrunk)
