"""Golden regression oracle: regenerate, diff against ``results/``.

The committed ``results/*.csv`` are the repository's measured numbers —
the values EXPERIMENTS.md claims reproduce the paper.  This module
regenerates the same figures/tables through the active
:class:`~repro.exec.SweepExecutor` and compares cell by cell under the
tolerance manifest, so any refactor that silently shifts a number fails
the gate with a report naming the exact cell (and, where declared, the
paper anchor it backs).

Capped runs: a ``--max-cpus N`` sweep produces a *prefix* of the full
power-of-two CPU schedule, and the simulator is deterministic, so the
regenerated points are compared index-aligned against the head of each
golden series.  A cap that is not itself on the schedule contributes one
off-schedule final point (``cpu_counts`` appends the cap); that single
tail cell is reported as uncovered rather than failed.  Items marked
``requires_full`` (Fig 5 / Table 3 run flagship configurations whose
values exist only at full scale) are wholly uncovered under a cap —
their shape is still enforced by the metamorphic layer.
"""

from __future__ import annotations

import csv
import math
import re
from pathlib import Path

from ..core.errors import ConfigError
from ..harness.figures import FigureResult, ALL_FIGURES
from ..harness.tables import ALL_TABLES, TableResult
from ..harness.report import table_to_csv
from .manifest import Manifest, ToleranceRule
from .report import (
    FAIL,
    MISSING,
    OK,
    UNCOVERED,
    CellReport,
    ItemReport,
)

#: Numeric equality slack for "exact" float comparisons (CSV round-trip).
_EXACT_EPS = 0.0

_FLOAT_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")


def clear_figure_caches() -> None:
    """Drop the scenario layer's memoised sweeps.

    The golden gate must *recompute*, not replay a value memoised before
    the change under test existed (tests monkeypatch calibration
    constants; long-lived processes may hold pre-edit sweeps).  The
    memos live in :mod:`repro.scenarios.builtin` now; the harness
    figure-layer aliases point at the same function objects.
    """
    from ..scenarios.builtin import clear_scenario_caches

    clear_scenario_caches()


# ---------------------------------------------------------------------------
# Golden data loading
# ---------------------------------------------------------------------------

def load_golden_figure(results_dir: str | Path,
                       fig_id: str) -> dict[str, list[tuple[float, float]]]:
    """Committed series of one figure: ``machine -> [(x, y), ...]``."""
    path = Path(results_dir) / f"{fig_id}.csv"
    if not path.exists():
        raise ConfigError(f"golden data missing: {path}")
    series: dict[str, list[tuple[float, float]]] = {}
    with open(path, newline="") as fh:
        rows = iter(csv.reader(fh))
        next(rows)  # header
        for row in rows:
            _fig, machine, _label, x, y = row
            series.setdefault(machine, []).append((float(x), float(y)))
    return series


def load_golden_table(results_dir: str | Path,
                      table_id: str) -> list[list[str]]:
    """Committed CSV cells of one table (header row included)."""
    path = Path(results_dir) / f"{table_id}.csv"
    if not path.exists():
        raise ConfigError(f"golden data missing: {path}")
    with open(path, newline="") as fh:
        return [row for row in csv.reader(fh)]


# ---------------------------------------------------------------------------
# Cell comparison
# ---------------------------------------------------------------------------

def rel_err(expected: float, actual: float) -> float:
    """Relative error with a sane zero-denominator convention."""
    if expected == actual:
        return 0.0
    denom = max(abs(expected), abs(actual))
    return abs(expected - actual) / denom if denom else 0.0


def _numeric_match(expected: float, actual: float,
                   rule: ToleranceRule) -> tuple[bool, float]:
    if math.isnan(expected) or math.isnan(actual):
        return (math.isnan(expected) and math.isnan(actual), math.inf)
    e = rel_err(expected, actual)
    tol = _EXACT_EPS if rule.mode == "exact" else rule.rtol
    return e <= tol, e


def compare_figure(fig: FigureResult, golden: dict,
                   rule: ToleranceRule, *, full: bool) -> ItemReport:
    """Diff a regenerated figure against its golden series."""
    if rule.requires_full and not full:
        return ItemReport(fig.fig_id, rule.mode, UNCOVERED,
                          detail="requires full-range run")
    if rule.mode == "ordering":
        return _compare_figure_ordering(fig, golden, rule)
    cells: list[CellReport] = []
    for s in fig.series:
        anchor = rule.anchor_for(s.machine)
        anchor_name = anchor.name if anchor else None
        gold_pts = golden.get(s.machine)
        if gold_pts is None:
            cells.append(CellReport(fig.fig_id, s.machine, 0, "series",
                                    None, len(s.x), None, MISSING,
                                    anchor_name))
            continue
        n_new = len(s.x)
        if full and n_new != len(gold_pts):
            cells.append(CellReport(fig.fig_id, s.machine, 0, "length",
                                    len(gold_pts), n_new, None, FAIL,
                                    anchor_name))
        for i in range(n_new):
            if i >= len(gold_pts):
                cells.append(CellReport(fig.fig_id, s.machine, i, "x",
                                        None, s.x[i], None, FAIL,
                                        anchor_name))
                continue
            gx, gy = gold_pts[i]
            x_ok, x_err = _numeric_match(gx, s.x[i], rule)
            y_ok, y_err = _numeric_match(gy, s.y[i], rule)
            # A cap off the power-of-two schedule appends one final
            # point with no golden counterpart: uncovered, not broken.
            capped_tail = (not full and not x_ok
                           and i == n_new - 1 and n_new < len(gold_pts))
            if capped_tail:
                cells.append(CellReport(fig.fig_id, s.machine, i, "x",
                                        gx, s.x[i], None, UNCOVERED,
                                        anchor_name))
                continue
            cells.append(CellReport(fig.fig_id, s.machine, i, "x",
                                    gx, s.x[i], x_err,
                                    OK if x_ok else FAIL, anchor_name))
            cells.append(CellReport(fig.fig_id, s.machine, i, "y",
                                    gy, s.y[i], y_err,
                                    OK if y_ok else FAIL, anchor_name))
    status = FAIL if any(c.status in (FAIL, MISSING) for c in cells) else OK
    return ItemReport(fig.fig_id, rule.mode, status, tuple(cells))


def _ranking(values: dict[str, float]) -> list[str]:
    """Machines ordered by value descending, name as deterministic tiebreak."""
    return sorted(values, key=lambda m: (-values[m], m))


def _compare_figure_ordering(fig: FigureResult, golden: dict,
                             rule: ToleranceRule) -> ItemReport:
    """Shape-only mode: per x-index, machine ranking must match golden."""
    cells: list[CellReport] = []
    n = min((len(s.x) for s in fig.series), default=0)
    for i in range(n):
        new_vals = {s.machine: s.y[i] for s in fig.series
                    if s.machine in golden and i < len(golden[s.machine])}
        gold_vals = {m: golden[m][i][1] for m in new_vals}
        got, want = _ranking(new_vals), _ranking(gold_vals)
        cells.append(CellReport(
            fig.fig_id, "<ordering>", i, "ranking",
            ">".join(want), ">".join(got), None,
            OK if got == want else FAIL,
            rule.anchor_for(None).name if rule.anchor_for(None) else None,
        ))
    status = FAIL if any(c.status == FAIL for c in cells) else OK
    return ItemReport(fig.fig_id, rule.mode, status, tuple(cells))


def compare_table(table: TableResult, golden: list[list[str]],
                  rule: ToleranceRule, *, full: bool) -> ItemReport:
    """Diff a regenerated table's CSV cells against the golden CSV."""
    if rule.requires_full and not full:
        return ItemReport(table.table_id, rule.mode, UNCOVERED,
                          detail="requires full-range run")
    new_rows = [row for row in csv.reader(table_to_csv(table).splitlines())]
    cells: list[CellReport] = []
    anchor = rule.anchor_for(None)
    anchor_name = anchor.name if anchor else None
    if len(new_rows) != len(golden):
        cells.append(CellReport(table.table_id, "shape", 0, "rows",
                                len(golden), len(new_rows), None, FAIL,
                                anchor_name))
    for r, (new_row, gold_row) in enumerate(zip(new_rows, golden)):
        row_key = new_row[0] if new_row else f"row{r}"
        for c in range(max(len(new_row), len(gold_row))):
            new_c = new_row[c] if c < len(new_row) else None
            gold_c = gold_row[c] if c < len(gold_row) else None
            ok, err = _table_cell_match(gold_c, new_c, rule)
            cells.append(CellReport(table.table_id, row_key, c,
                                    f"col{c}", gold_c, new_c, err,
                                    OK if ok else FAIL, anchor_name))
    status = FAIL if any(cl.status == FAIL for cl in cells) else OK
    return ItemReport(table.table_id, rule.mode, status, tuple(cells))


def _table_cell_match(gold: str | None, new: str | None,
                      rule: ToleranceRule) -> tuple[bool, float | None]:
    if gold is None or new is None:
        return False, None
    if gold == new:
        return True, 0.0
    if rule.mode == "rel":
        # Numeric-prefix cells like "8.702 TF/s": tolerance on the number,
        # exact match on the unit suffix.
        mg, mn = _FLOAT_RE.match(gold), _FLOAT_RE.match(new)
        if mg and mn and gold[mg.end():] == new[mn.end():]:
            e = rel_err(float(mg.group()), float(mn.group()))
            return e <= rule.rtol, e
    return False, None


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------

def run_golden(figures: list[str], tables: list[str], *,
               results_dir: str | Path, manifest: Manifest,
               max_cpus: int | None = None) -> list[ItemReport]:
    """Regenerate the named items and diff each against ``results_dir``.

    Runs through the ambient executor (install one with
    :func:`repro.exec.using_executor` to parallelise / cache).
    """
    full = max_cpus is None
    reports: list[ItemReport] = []
    clear_figure_caches()
    try:
        for t in tables:
            rule = manifest.rule_for(t)
            if rule.requires_full and not full:
                reports.append(ItemReport(t, rule.mode, UNCOVERED,
                                          detail="requires full-range run"))
                continue
            fn = ALL_TABLES[t]
            table = fn() if t != "table3" else fn(max_cpus=max_cpus)
            reports.append(compare_table(
                table, load_golden_table(results_dir, t), rule, full=full))
        for f in figures:
            rule = manifest.rule_for(f)
            if rule.requires_full and not full:
                reports.append(ItemReport(f, rule.mode, UNCOVERED,
                                          detail="requires full-range run"))
                continue
            fig = ALL_FIGURES[f](max_cpus=max_cpus)
            reports.append(compare_figure(
                fig, load_golden_figure(results_dir, f), rule, full=full))
    finally:
        # Leave no memoised sweep behind: a perturbed-run cell must never
        # leak into a later figure regeneration in the same process.
        clear_figure_caches()
    return reports
