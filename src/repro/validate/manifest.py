"""Tolerance manifest: what "reproduced" means, per figure/table.

The golden-result gate (:mod:`repro.validate.golden`) needs to know, for
every artifact under ``results/``, how strictly a regenerated value must
match the committed one.  That policy lives in ``results/TOLERANCES.json``
next to the data it governs, so a calibration PR that legitimately moves
numbers must touch the manifest in the same diff — the review sees both.

Three comparison modes:

* ``exact`` — byte-identical CSV cells (static tables, e.g. Table 2).
* ``rel`` — every numeric cell within ``rtol`` relative error
  (simulation outputs: deterministic, so the seed tree matches at 0.0,
  and the tolerance is headroom for deliberate re-calibration).
* ``ordering`` — only the ranking of machines per x-position must hold
  (shape claims like "the SX-8 curve stays on top").

``requires_full`` marks items whose committed values only exist at the
paper's full CPU ranges (Fig 5 / Table 3 run flagship configurations);
a capped ``--max-cpus`` validation reports them as *uncovered* rather
than comparing apples to oranges.

Anchors name the paper claims a cell backs (e.g. "SX-8 ~60 B/KFlop flat
to 576 CPUs"); when a cell regresses, the report says which quoted
number just broke instead of only a row index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import ConfigError

#: Comparison modes a rule may declare.
MODES = ("exact", "rel", "ordering")

#: Manifest file name, resolved relative to the golden results directory.
MANIFEST_NAME = "TOLERANCES.json"


@dataclass(frozen=True)
class Anchor:
    """A paper claim tied to (part of) an item's data."""

    name: str
    machine: str | None = None   # None: the anchor spans every series

    def covers(self, machine: str | None) -> bool:
        return self.machine is None or self.machine == machine


@dataclass(frozen=True)
class ToleranceRule:
    """How one figure/table must match its committed golden data."""

    item_id: str
    mode: str = "rel"
    rtol: float = 0.02
    requires_full: bool = False
    anchors: tuple[Anchor, ...] = ()
    notes: str = ""

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"{self.item_id}: unknown tolerance mode {self.mode!r} "
                f"(expected one of {MODES})"
            )
        if self.rtol < 0:
            raise ConfigError(f"{self.item_id}: rtol must be >= 0")

    def anchor_for(self, machine: str | None) -> Anchor | None:
        """The most specific anchor covering ``machine`` (if any)."""
        best = None
        for a in self.anchors:
            if a.covers(machine):
                if a.machine is not None:
                    return a
                best = best or a
        return best


@dataclass(frozen=True)
class Manifest:
    """Parsed ``TOLERANCES.json``: per-item rules plus kind defaults."""

    path: str
    version: int
    defaults: dict = field(default_factory=dict)
    items: dict = field(default_factory=dict)   # item_id -> ToleranceRule

    def rule_for(self, item_id: str) -> ToleranceRule:
        """The rule governing ``item_id`` (explicit entry or kind default)."""
        rule = self.items.get(item_id)
        if rule is not None:
            return rule
        kind = "table" if item_id.startswith("table") else "figure"
        d = self.defaults.get(kind, {})
        return ToleranceRule(
            item_id=item_id,
            mode=d.get("mode", "rel"),
            rtol=d.get("rtol", 0.02),
        )


def _parse_anchors(raw: list) -> tuple[Anchor, ...]:
    return tuple(Anchor(name=a["name"], machine=a.get("machine"))
                 for a in raw)


def _parse_rule(item_id: str, entry: dict, defaults: dict) -> ToleranceRule:
    kind = "table" if item_id.startswith("table") else "figure"
    d = defaults.get(kind, {})
    return ToleranceRule(
        item_id=item_id,
        mode=entry.get("mode", d.get("mode", "rel")),
        rtol=entry.get("rtol", d.get("rtol", 0.02)),
        requires_full=entry.get("requires_full", False),
        anchors=_parse_anchors(entry.get("anchors", [])),
        notes=entry.get("notes", ""),
    )


def load_manifest(path: str | Path) -> Manifest:
    """Load and validate a tolerance manifest."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(
            f"tolerance manifest not found: {path} — the golden gate "
            f"refuses to run without declared tolerances"
        )
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid tolerance manifest {path}: {exc}") from None
    defaults = doc.get("defaults", {})
    items = {
        item_id: _parse_rule(item_id, entry, defaults)
        for item_id, entry in doc.get("items", {}).items()
    }
    return Manifest(
        path=str(path),
        version=int(doc.get("version", 1)),
        defaults=defaults,
        items=items,
    )


def manifest_path_for(results_dir: str | Path) -> Path:
    """Where the manifest lives for a given golden results directory."""
    return Path(results_dir) / MANIFEST_NAME
