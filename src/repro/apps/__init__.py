"""Proxy applications: the paper's thesis, executable.

Section 1 claims "Performance of any real world application is bounded
by the performance of these four HPCC Benchmarks".  These miniature
applications let the library test that statement inside the model:

* :mod:`~repro.apps.cg` — conjugate gradient (STREAM + tiny allreduces,
  numerically real);
* :mod:`~repro.apps.spectral` — pseudo-spectral stepping
  (alltoall-bound, the G-FFT/Fig 12 regime);
* :mod:`~repro.apps.amr_exchange` — ghost-layer exchange CFD
  (the IMB Exchange pattern).

``benchmarks/test_apps_thesis.py`` checks each proxy's cross-machine
ordering against the benchmark class it stresses.
"""

from .amr_exchange import AMRConfig, AMRResult, amr_program, run_amr
from .cg import CGConfig, CGResult, cg_program, reference_solution, run_cg
from .spectral import (
    SpectralConfig,
    SpectralResult,
    run_spectral,
    spectral_program,
)

__all__ = [
    "CGConfig",
    "CGResult",
    "cg_program",
    "run_cg",
    "reference_solution",
    "SpectralConfig",
    "SpectralResult",
    "spectral_program",
    "run_spectral",
    "AMRConfig",
    "AMRResult",
    "amr_program",
    "run_amr",
]
