"""Spectral-method proxy application (alltoall-bound).

The paper motivates MPI_Alltoall with "spectral methods, signal
processing and climate modeling using Fast Fourier Transforms"
(§3.2.3).  This proxy runs a pseudo-spectral time-stepping loop: each
step is a forward distributed FFT, a pointwise operator in spectral
space, and an inverse FFT — i.e. six alltoall transposes per step plus
vector compute, the communication signature of a climate dynamical
core.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import BenchmarkError
from ..hpcc.fft import fft_flops
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster


@dataclass(frozen=True)
class SpectralConfig:
    total_elements: int = 1 << 18   # global grid points
    steps: int = 4                  # time steps


@dataclass(frozen=True)
class SpectralResult:
    elapsed: float
    steps: int
    comm_fraction: float
    nprocs: int

    @property
    def time_per_step_us(self) -> float:
        return self.elapsed / max(self.steps, 1) * 1e6


def spectral_program(comm, cfg: SpectralConfig):
    p = comm.size
    n = cfg.total_elements
    if n % (p * p):
        raise BenchmarkError(
            f"grid {n} must be divisible by nprocs^2 ({p}^2)"
        )
    n_local = n // p
    chunk_bytes = 16 * (n_local // p)

    def transform():
        # one distributed FFT: 3 transposes + 2 butterfly stages + twiddle
        nonlocal comm_time
        for _ in range(3):
            tc = comm.now
            yield from comm.alltoall(nbytes=chunk_bytes)
            comm_time += comm.now - tc
        for _ in range(2):
            yield from comm.compute(flops=fft_flops(n_local),
                                    nbytes=32.0 * n_local, kernel="fft")
        yield from comm.compute(flops=6.0 * n_local, nbytes=32.0 * n_local,
                                kernel="fft")

    comm_time = 0.0
    yield from comm.barrier()
    t0 = comm.now
    for _step in range(cfg.steps):
        yield from transform()                     # forward
        yield from comm.compute(flops=2.0 * n_local,
                                nbytes=32.0 * n_local,
                                kernel="stream_triad")  # spectral operator
        yield from transform()                     # inverse
    elapsed = comm.now - t0
    return elapsed, comm_time


def run_spectral(machine: MachineSpec, nprocs: int,
                 cfg: SpectralConfig | None = None) -> SpectralResult:
    cfg = cfg or SpectralConfig()
    cluster = Cluster(machine, nprocs)
    out = cluster.run(spectral_program, cfg)
    elapsed = max(r[0] for r in out.results)
    comm_time = max(r[1] for r in out.results)
    return SpectralResult(
        elapsed=elapsed,
        steps=cfg.steps,
        comm_fraction=comm_time / elapsed if elapsed else 0.0,
        nprocs=nprocs,
    )
