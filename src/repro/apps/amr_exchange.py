"""Boundary-exchange proxy application (Exchange-pattern-bound).

The paper ties IMB's Exchange benchmark to "unstructured adaptive mesh
refinement computational fluid dynamics involving boundary exchanges"
(§3.2.2).  This proxy runs exactly that loop: per step, every rank
updates its cell block (streaming compute) and exchanges ghost layers
with both chain neighbours — large bidirectional messages, the pattern
that punishes half-duplex NICs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import BenchmarkError
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster


@dataclass(frozen=True)
class AMRConfig:
    cells_per_rank: int = 200_000   # interior cells (8 B each)
    ghost_cells: int = 16_384       # ghost layer exchanged per side
    steps: int = 8


@dataclass(frozen=True)
class AMRResult:
    elapsed: float
    steps: int
    comm_fraction: float
    nprocs: int

    @property
    def time_per_step_us(self) -> float:
        return self.elapsed / max(self.steps, 1) * 1e6


def amr_program(comm, cfg: AMRConfig):
    if cfg.ghost_cells > cfg.cells_per_rank:
        raise BenchmarkError("ghost layer larger than the block")
    rank, size = comm.rank, comm.size
    right = (rank + 1) % size
    left = (rank - 1) % size
    ghost_bytes = 8 * cfg.ghost_cells

    comm_time = 0.0
    yield from comm.barrier()
    t0 = comm.now
    for step in range(cfg.steps):
        # flux update over the block: ~10 flops and 5 memory streams/cell
        yield from comm.compute(flops=10.0 * cfg.cells_per_rank,
                                nbytes=40.0 * cfg.cells_per_rank,
                                kernel="stream_triad")
        # ghost exchange with both neighbours (the IMB Exchange pattern)
        tc = comm.now
        rreqs = [comm.irecv(left, tag=2 * step),
                 comm.irecv(right, tag=2 * step + 1)]
        sreqs = [comm.isend(right, nbytes=ghost_bytes, tag=2 * step),
                 comm.isend(left, nbytes=ghost_bytes, tag=2 * step + 1)]
        yield from comm.waitall(rreqs + sreqs)
        comm_time += comm.now - tc
    elapsed = comm.now - t0
    return elapsed, comm_time


def run_amr(machine: MachineSpec, nprocs: int,
            cfg: AMRConfig | None = None) -> AMRResult:
    cfg = cfg or AMRConfig()
    cluster = Cluster(machine, nprocs)
    out = cluster.run(amr_program, cfg)
    elapsed = max(r[0] for r in out.results)
    comm_time = max(r[1] for r in out.results)
    return AMRResult(
        elapsed=elapsed,
        steps=cfg.steps,
        comm_fraction=comm_time / elapsed if elapsed else 0.0,
        nprocs=nprocs,
    )
