"""Distributed conjugate-gradient proxy application.

The paper's thesis is that real applications are bounded by the four
HPCC locality classes (§1).  CG is the canonical "low temporal, high
spatial locality + latency-bound reductions" application: each iteration
is one sparse matrix-vector product (halo exchange + streaming compute),
two global dot products (tiny allreduces) and three vector updates.

This implementation is *numerically real*: it solves the 1-D Poisson
system ``-u'' = f`` (tridiagonal, SPD) distributed block-wise, with
1-element halo exchanges — the test suite checks the solution against
``numpy.linalg.solve``.  Virtual time comes from the same model as every
benchmark, so the app's machine ordering can be compared against the
HPCC/IMB orderings (see ``benchmarks/test_apps_thesis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import BenchmarkError
from ..machine.system import MachineSpec
from ..mpi.cluster import Cluster
from ..mpi.datatypes import SUM


@dataclass(frozen=True)
class CGConfig:
    n_local: int = 5000        # unknowns per rank
    iterations: int = 50       # fixed iteration count (timing mode)
    tol: float = 1e-10         # convergence tolerance (validate mode)
    validate: bool = False


@dataclass(frozen=True)
class CGResult:
    elapsed: float
    iterations: int
    residual: float
    comm_fraction: float
    nprocs: int

    @property
    def time_per_iteration_us(self) -> float:
        return self.elapsed / max(self.iterations, 1) * 1e6


def _halo_exchange(comm, left_val: float, right_val: float, step: int):
    """Exchange one 8-byte halo value with each neighbour (non-periodic)."""
    rank, size = comm.rank, comm.size
    reqs = []
    if rank > 0:
        reqs.append(comm.irecv(rank - 1, tag=2 * step))
        reqs.append(comm.isend(rank - 1, data=left_val, nbytes=8,
                               tag=2 * step + 1))
    if rank < size - 1:
        reqs.append(comm.irecv(rank + 1, tag=2 * step + 1))
        reqs.append(comm.isend(rank + 1, data=right_val, nbytes=8,
                               tag=2 * step))
    results = yield from comm.waitall(reqs)
    lo = hi = 0.0
    for r in results:
        if r is None or not hasattr(r, "source"):
            continue
        if r.source == rank - 1:
            lo = r.data
        elif r.source == rank + 1:
            hi = r.data
    return lo, hi


def cg_program(comm, cfg: CGConfig):
    """Rank program; returns (elapsed, iterations, residual, comm_time)."""
    n = cfg.n_local
    if n < 2:
        raise BenchmarkError("CG needs at least 2 unknowns per rank")
    rank, size = comm.rank, comm.size
    total = n * size

    # -u'' = f with u(x) = sin(pi x) on [0, 1]: A = tridiag(-1, 2, -1)/h^2
    h = 1.0 / (total + 1)
    xs = (np.arange(rank * n, (rank + 1) * n) + 1) * h
    f = (np.pi ** 2) * np.sin(np.pi * xs)

    x = np.zeros(n)
    r = f * (h * h)            # b for the scaled system A~ = tridiag(-1,2,-1)
    p = r.copy()
    rs_old_arr = yield from comm.allreduce(np.array([float(r @ r)]), op=SUM)
    rs_old = float(rs_old_arr[0])

    comm_time = 0.0
    t_start = comm.now
    it = 0
    max_it = cfg.iterations if not cfg.validate else 10 * total
    while it < max_it:
        it += 1
        # SpMV: Ap = 2 p_i - p_{i-1} - p_{i+1} with halos from neighbours
        tc = comm.now
        lo, hi = yield from _halo_exchange(comm, float(p[0]), float(p[-1]),
                                           it)
        comm_time += comm.now - tc
        yield from comm.compute(flops=3.0 * n, nbytes=24.0 * n,
                                kernel="stream_triad")
        ap = 2.0 * p
        ap[:-1] -= p[1:]
        ap[1:] -= p[:-1]
        ap[0] -= lo
        ap[-1] -= hi

        tc = comm.now
        p_ap_arr = yield from comm.allreduce(np.array([float(p @ ap)]),
                                             op=SUM)
        comm_time += comm.now - tc
        alpha = rs_old / float(p_ap_arr[0])
        yield from comm.compute(flops=4.0 * n, nbytes=48.0 * n,
                                kernel="stream_triad")
        x += alpha * p
        r -= alpha * ap

        tc = comm.now
        rs_arr = yield from comm.allreduce(np.array([float(r @ r)]), op=SUM)
        comm_time += comm.now - tc
        rs_new = float(rs_arr[0])
        if cfg.validate and np.sqrt(rs_new) < cfg.tol:
            rs_old = rs_new
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    elapsed = comm.now - t_start
    residual = float(np.sqrt(rs_old))
    return elapsed, it, residual, comm_time, x


def run_cg(machine: MachineSpec, nprocs: int,
           cfg: CGConfig | None = None) -> CGResult:
    cfg = cfg or CGConfig()
    cluster = Cluster(machine, nprocs)
    out = cluster.run(cg_program, cfg)
    elapsed = max(r[0] for r in out.results)
    comm_time = max(r[3] for r in out.results)
    return CGResult(
        elapsed=elapsed,
        iterations=out.results[0][1],
        residual=out.results[0][2],
        comm_fraction=comm_time / elapsed if elapsed else 0.0,
        nprocs=nprocs,
    )


def reference_solution(nprocs: int, cfg: CGConfig) -> np.ndarray:
    """Direct solve of the same system for validation."""
    total = cfg.n_local * nprocs
    a = (np.diag(np.full(total, 2.0))
         + np.diag(np.full(total - 1, -1.0), 1)
         + np.diag(np.full(total - 1, -1.0), -1))
    h = 1.0 / (total + 1)
    xs = (np.arange(total) + 1) * h
    b = (np.pi ** 2) * np.sin(np.pi * xs) * h * h
    return np.linalg.solve(a, b)
