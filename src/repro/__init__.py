"""repro — a simulated reproduction of Saini et al., "Performance
evaluation of supercomputers using HPCC and IMB Benchmarks".

The package provides:

* :mod:`repro.core` — a deterministic discrete-event engine;
* :mod:`repro.network` — interconnect topologies and the contention model;
* :mod:`repro.machine` — models of the paper's five platforms;
* :mod:`repro.mpi` — a simulated MPI (point-to-point + collectives);
* :mod:`repro.hpcc` — the HPC Challenge benchmark suite;
* :mod:`repro.imb` — the Intel MPI Benchmarks;
* :mod:`repro.analysis` — the paper's ratio-based analysis;
* :mod:`repro.harness` — regeneration of every table and figure;
* :mod:`repro.service` — the async sweep service (job queue, request
  coalescing, multi-tenant result store).

Quickstart::

    from repro import Cluster, get_machine

    def hello(comm):
        peers = yield from comm.allgather(comm.rank, nbytes=8)
        return peers

    res = Cluster(get_machine("sx8"), nprocs=8).run(hello)
    print(res.elapsed_us, res.results[0])

The supported programmatic surface beyond the simulation primitives
lives in :mod:`repro.api` and is re-exported here lazily — e.g.
``from repro import run_figure`` resolves through :mod:`repro.api`
without importing the harness at package-import time.
"""

from .core import (
    BenchmarkError,
    ConfigError,
    DeadlockError,
    Engine,
    MPIError,
    ReproError,
    SimulationError,
    Tracer,
)
from .machine import (
    ALL_MACHINES,
    MACHINES,
    PAPER_FIVE,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    ProcessorSpec,
    get_machine,
)
from .mpi import (
    ANY_SOURCE,
    ANY_TAG,
    BXOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Cluster,
    Comm,
    Op,
    RunResult,
)

__version__ = "1.0.0"

#: Names served lazily from :mod:`repro.api` (PEP 562): importing
#: ``repro`` must stay cheap, so the harness/service/validate stacks
#: load only when one of these is first touched.
_API_NAMES = frozenset({
    "JobQueue",
    "ReproConfig",
    "ResultCache",
    "SimPoint",
    "SweepExecutor",
    "default_jobs",
    "get_executor",
    "normalize_figure_id",
    "normalize_table_id",
    "run_figure",
    "run_table",
    "using_executor",
    "validate",
})


def __getattr__(name: str):
    if name in _API_NAMES:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _API_NAMES)


__all__ = [
    "__version__",
    "Cluster",
    "Comm",
    "RunResult",
    "Engine",
    "Tracer",
    "MachineSpec",
    "ProcessorSpec",
    "NodeSpec",
    "NetworkSpec",
    "get_machine",
    "MACHINES",
    "PAPER_FIVE",
    "ALL_MACHINES",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BXOR",
    "ANY_SOURCE",
    "ANY_TAG",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "MPIError",
    "ConfigError",
    "BenchmarkError",
    # Lazy re-exports from repro.api (the stable public surface):
    "JobQueue",
    "ReproConfig",
    "ResultCache",
    "SimPoint",
    "SweepExecutor",
    "default_jobs",
    "get_executor",
    "normalize_figure_id",
    "normalize_table_id",
    "run_figure",
    "run_table",
    "using_executor",
    "validate",
]
