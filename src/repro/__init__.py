"""repro — a simulated reproduction of Saini et al., "Performance
evaluation of supercomputers using HPCC and IMB Benchmarks".

The package provides:

* :mod:`repro.core` — a deterministic discrete-event engine;
* :mod:`repro.network` — interconnect topologies and the contention model;
* :mod:`repro.machine` — models of the paper's five platforms;
* :mod:`repro.mpi` — a simulated MPI (point-to-point + collectives);
* :mod:`repro.hpcc` — the HPC Challenge benchmark suite;
* :mod:`repro.imb` — the Intel MPI Benchmarks;
* :mod:`repro.analysis` — the paper's ratio-based analysis;
* :mod:`repro.harness` — regeneration of every table and figure.

Quickstart::

    from repro import Cluster, get_machine

    def hello(comm):
        peers = yield from comm.allgather(comm.rank, nbytes=8)
        return peers

    res = Cluster(get_machine("sx8"), nprocs=8).run(hello)
    print(res.elapsed_us, res.results[0])
"""

from .core import (
    BenchmarkError,
    ConfigError,
    DeadlockError,
    Engine,
    MPIError,
    ReproError,
    SimulationError,
    Tracer,
)
from .machine import (
    ALL_MACHINES,
    MACHINES,
    PAPER_FIVE,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    ProcessorSpec,
    get_machine,
)
from .mpi import (
    ANY_SOURCE,
    ANY_TAG,
    BXOR,
    MAX,
    MIN,
    PROD,
    SUM,
    Cluster,
    Comm,
    Op,
    RunResult,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Cluster",
    "Comm",
    "RunResult",
    "Engine",
    "Tracer",
    "MachineSpec",
    "ProcessorSpec",
    "NodeSpec",
    "NetworkSpec",
    "get_machine",
    "MACHINES",
    "PAPER_FIVE",
    "ALL_MACHINES",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "BXOR",
    "ANY_SOURCE",
    "ANY_TAG",
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "MPIError",
    "ConfigError",
    "BenchmarkError",
]
