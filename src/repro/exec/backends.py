"""Pluggable execution backends for the sweep executor.

Mirror of :mod:`repro.core.sched`: where that module lifts the engine's
event queue behind a registry of scheduler backends, this one lifts the
*executor's* compute path behind a registry of execution backends, so how
simulation points are fanned out can be swapped without touching sweep
semantics:

* ``inline`` — compute every point serially in this process.  The
  reference backend and the library default.
* ``pool`` — fan points out over a lazily created
  ``concurrent.futures.ProcessPoolExecutor`` (the pre-registry
  ``--jobs N`` path).  Degrades to inline computation for a single point
  or ``jobs == 1``, exactly as before.
* ``subprocess`` — a persistent fleet of worker subprocesses speaking a
  line-delimited JSON job protocol over stdin/stdout
  (:mod:`repro.exec.fleet`).  Functionally equivalent to ``pool`` but
  with an explicit wire protocol — the seam where future remote (HTTP)
  workers plug in: anything that can answer the same JSON lines can be a
  worker.

Every backend honours the same contract: :meth:`ExecBackend.compute`
takes a sequence of points and returns their records **in input order**
— which is what keeps figures byte-identical across backends.  Worker
*transport* failures (a killed worker process, a broken pool) raise
:class:`ExecBackendError` carrying any already-completed records so the
executor can requeue only the unfinished points; simulation errors
raised by a point itself propagate unchanged, as they always did.

Selection: ``SweepExecutor(backend=...)`` takes a name or instance; the
default comes from :func:`default_exec_backend_name`, wired to the
``--exec-backend`` CLI flag and the ``REPRO_EXEC_BACKEND`` environment
variable through :class:`repro.config.ReproConfig`.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import subprocess
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..config import EXEC_BACKEND_ENV
from ..core import sched
from ..core.errors import ConfigError
from ..obs.commviz import CommRecorder, get_commviz, set_commviz
from ..obs.energy import EnergyRecorder, get_energy, set_energy
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics
from ..obs.telemetry import get_telemetry
from ..obs.timeline import TimelineRecorder, get_timeline, set_timeline
from .points import SimPoint
from .worker import PointRecord, compute_point

#: Backend name used when nothing is configured anywhere (the serial
#: library default; CLIs resolve ``--jobs N > 1`` to ``pool``).
FALLBACK_EXEC_BACKEND = "inline"


class ExecBackendError(RuntimeError):
    """A worker-transport failure (worker death, broken pool).

    ``done`` maps the indices of points that *did* finish (within the
    failed :meth:`ExecBackend.compute` call) to their records, so the
    caller can requeue only what is missing.  Never raised for errors in
    the simulated points themselves — those propagate as-is.
    """

    def __init__(self, message: str,
                 done: dict[int, PointRecord] | None = None) -> None:
        super().__init__(message)
        self.done: dict[int, PointRecord] = done or {}


@dataclass(frozen=True)
class WorkerContext:
    """Everything a worker process must mirror from its parent.

    One picklable/JSON-able object replaces the positional initargs
    tuple that used to be threaded into the pool initializer: the
    observability switches plus the scheduler-backend choice (with the
    ``spawn`` start method a child would otherwise re-resolve its own
    environment).
    """

    metrics: bool = False
    comm: bool = False
    timeline: bool = False
    energy: bool = False
    telemetry: bool = False
    engine_backend: str | None = None

    @classmethod
    def capture(cls) -> "WorkerContext":
        """Snapshot the ambient switches of the calling (parent) process."""
        return cls(metrics=get_metrics().enabled,
                   comm=get_commviz().enabled,
                   timeline=get_timeline().enabled,
                   energy=get_energy().enabled,
                   telemetry=get_telemetry().enabled,
                   engine_backend=sched.default_backend_name())

    def to_dict(self) -> dict:
        return {"metrics": self.metrics, "comm": self.comm,
                "timeline": self.timeline, "energy": self.energy,
                "telemetry": self.telemetry,
                "engine_backend": self.engine_backend}

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkerContext":
        return cls(metrics=bool(doc.get("metrics")),
                   comm=bool(doc.get("comm")),
                   timeline=bool(doc.get("timeline")),
                   energy=bool(doc.get("energy")),
                   telemetry=bool(doc.get("telemetry")),
                   engine_backend=doc.get("engine_backend"))


def init_worker(ctx: WorkerContext) -> None:
    """Initialise a worker process from its parent's :class:`WorkerContext`.

    Used as the process-pool initializer and by the subprocess fleet's
    ``init`` message.  Workers start with the shared disabled
    registry/recorders; when the parent runs with them on, each worker
    gets its own enabled instances so :func:`compute_point` collects
    per-point snapshots for the deterministic fan-in merge.
    """
    if ctx.engine_backend is not None:
        sched.set_default_backend(ctx.engine_backend)
    if ctx.metrics:
        set_metrics(MetricsRegistry(enabled=True))
    if ctx.comm:
        set_commviz(CommRecorder(enabled=True))
    if ctx.timeline:
        set_timeline(TimelineRecorder(enabled=True))
    if ctx.energy:
        set_energy(EnergyRecorder(enabled=True))
    # ctx.telemetry is deliberately NOT installed here: a process-global
    # recorder in a pool worker would accumulate spans nobody drains.
    # The fleet worker scopes a recorder per job message instead, and
    # ships the spans back in the protocol reply (see repro.exec.fleet).


class ExecBackend:
    """How a batch of simulation points gets computed.

    The contract:

    * :meth:`compute` returns one :class:`PointRecord` per point, in
      input order.  A transport failure raises :class:`ExecBackendError`
      with the partial ``done`` map; a point's own exception propagates.
    * :meth:`close` releases worker resources (idempotent).
    """

    name: str = "?"

    def compute(self, points: Sequence[SimPoint]) -> list[PointRecord]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class InlineBackend(ExecBackend):
    """Serial, in-process computation — the reference backend."""

    name = "inline"

    def __init__(self, jobs: int = 1) -> None:
        # ``jobs`` accepted for factory uniformity; inline ignores it.
        self.jobs = 1

    def compute(self, points: Sequence[SimPoint]) -> list[PointRecord]:
        return [compute_point(pt) for pt in points]


class PoolBackend(ExecBackend):
    """Process-pool fan-out via ``concurrent.futures``.

    The pool is created lazily on the first multi-point batch so that
    executors which only ever see cache hits (or single points) never
    pay the spawn cost — and captures the parent's
    :class:`WorkerContext` at that moment.
    """

    name = "pool"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._pool: ProcessPoolExecutor | None = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=init_worker,
                initargs=(WorkerContext.capture(),),
            )
        return self._pool

    def compute(self, points: Sequence[SimPoint]) -> list[PointRecord]:
        if self.jobs <= 1 or len(points) <= 1:
            return [compute_point(pt) for pt in points]
        pool = self._get_pool()
        try:
            return list(pool.map(compute_point, points))
        except BrokenProcessPool as exc:
            # The pool is unusable from here on; drop it so a retry can
            # spawn a fresh one.  ``map`` yields no partial results, so
            # nothing is salvaged.
            self._pool = None
            raise ExecBackendError(
                f"process pool broke while computing "
                f"{len(points)} points: {exc}") from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class _FleetWorker:
    """One subprocess speaking the line-delimited JSON job protocol."""

    def __init__(self, ctx: WorkerContext) -> None:
        env = dict(os.environ)
        pkg_root = str(Path(__file__).resolve().parent.parent.parent)
        path = env.get("PYTHONPATH", "")
        if pkg_root not in path.split(os.pathsep):
            env["PYTHONPATH"] = (pkg_root + (os.pathsep + path if path
                                             else ""))
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.fleet"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=env, text=True, bufsize=1,
        )
        self.send({"op": "init", "ctx": ctx.to_dict()})

    def send(self, msg: dict) -> None:
        self.proc.stdin.write(json.dumps(msg, sort_keys=True) + "\n")
        self.proc.stdin.flush()

    def recv(self) -> dict | None:
        line = self.proc.stdout.readline()
        if not line:
            return None
        return json.loads(line)

    def alive(self) -> bool:
        return self.proc.poll() is None

    def close(self) -> None:
        if self.alive():
            try:
                self.send({"op": "shutdown"})
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        try:
            self.proc.stdin.close()
        except OSError:  # pragma: no cover
            pass
        self.proc.wait(timeout=10)


def encode_record(record: PointRecord) -> str:
    """Pickle + base64 a record for transport inside a JSON line."""
    return base64.b64encode(
        pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def decode_record(blob: str) -> PointRecord:
    return pickle.loads(base64.b64decode(blob))


def encode_point(point: SimPoint) -> str:
    return base64.b64encode(
        pickle.dumps(point, protocol=pickle.HIGHEST_PROTOCOL)).decode()


def decode_point(blob: str) -> SimPoint:
    return pickle.loads(base64.b64decode(blob))


class SubprocessBackend(ExecBackend):
    """Worker-fleet backend: N persistent subprocess workers.

    Points are dealt round-robin across the fleet; each worker runs its
    share in lock-step (send one job, read its result, send the next) so
    the pipes can never fill up and deadlock, while the fleet as a whole
    still computes ``jobs`` points concurrently.  A worker that dies
    mid-batch surfaces as :class:`ExecBackendError` carrying every
    record the rest of the fleet completed, so the executor requeues
    only the lost points.
    """

    name = "subprocess"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._fleet: list[_FleetWorker] = []
        self._ctx: WorkerContext | None = None
        #: Cumulative worker-health counters (service fleet stats):
        #: workers spawned, job requests answered, crashes (transport
        #: failures that dropped the fleet), and workers spawned *after*
        #: a crash (restarts).  Plain ints mutated under the GIL — reads
        #: are snapshots via SweepExecutor.backend_health().
        self.health = {"workers_spawned": 0, "requests": 0,
                       "crashes": 0, "restarts": 0}
        self._crashed = False

    def _ensure_fleet(self, n: int) -> list[_FleetWorker]:
        ctx = WorkerContext.capture()
        if self._fleet and ctx != self._ctx:
            # Observability switches or scheduler default changed since
            # the fleet started: restart so workers mirror the parent.
            self.close()
        self._ctx = ctx
        while len(self._fleet) < n:
            self._fleet.append(_FleetWorker(ctx))
            self.health["workers_spawned"] += 1
            if self._crashed:
                self.health["restarts"] += 1
        return self._fleet[:n]

    def compute(self, points: Sequence[SimPoint]) -> list[PointRecord]:
        if not points:
            return []
        n_workers = min(self.jobs, len(points))
        if n_workers <= 1:
            # A single worker fleet would just add IPC overhead on top
            # of a serial computation; short-circuit like ``pool`` does.
            return [compute_point(pt) for pt in points]
        fleet = self._ensure_fleet(n_workers)
        shares: list[list[int]] = [[] for _ in range(n_workers)]
        for i in range(len(points)):
            shares[i % n_workers].append(i)

        # Trace context captured on the dispatching thread: the pump
        # threads below have no open spans of their own (the recorder's
        # stacks are thread-local), so they carry both the context and
        # the recorder object into the protocol explicitly.  This dict
        # in the job message IS the cross-process propagation seam a
        # remote (HTTP) worker would inherit.
        tel = get_telemetry()
        trace_ctx = tel.inject() if tel.enabled else None

        done: dict[int, PointRecord] = {}
        failures: list[str] = []
        crashes = 0
        lock = threading.Lock()

        def pump(worker: _FleetWorker, share: list[int]) -> None:
            nonlocal crashes
            for i in share:
                msg = {"op": "job", "id": i,
                       "point": encode_point(points[i])}
                if trace_ctx is not None:
                    msg["trace"] = trace_ctx
                try:
                    worker.send(msg)
                    reply = worker.recv()
                except (OSError, ValueError, json.JSONDecodeError) as exc:
                    with lock:
                        failures.append(f"worker i/o failed: {exc}")
                        crashes += 1
                    return
                if reply is None:
                    with lock:
                        failures.append(
                            f"worker exited mid-batch (point {i})")
                        crashes += 1
                    return
                if reply.get("op") == "error":
                    with lock:
                        failures.append(
                            f"point {points[i]} failed in worker: "
                            f"{reply.get('error')}")
                    return
                with lock:
                    done[reply["id"]] = decode_record(reply["record"])
                    self.health["requests"] += 1
                if trace_ctx is not None:
                    tel.adopt(reply.get("spans"))

        threads = [threading.Thread(target=pump, args=(w, s), daemon=True)
                   for w, s in zip(fleet, shares)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if failures:
            self.health["crashes"] += crashes
            if crashes:
                self._crashed = True
            self.close()  # drop the whole fleet; survivors restart lazily
            raise ExecBackendError(
                "; ".join(failures), done=done)
        return [done[i] for i in range(len(points))]

    def close(self) -> None:
        fleet, self._fleet = self._fleet, []
        for worker in fleet:
            try:
                worker.close()
            except (OSError, subprocess.TimeoutExpired):
                worker.proc.kill()


#: Execution-backend registry: name -> factory taking ``jobs``.
EXEC_BACKENDS: dict[str, Callable[[int], ExecBackend]] = {
    "inline": InlineBackend,
    "pool": PoolBackend,
    "subprocess": SubprocessBackend,
}


def register_exec_backend(name: str,
                          factory: Callable[[int], ExecBackend]) -> None:
    """Register an execution backend under ``name`` (overwrites allowed)."""
    EXEC_BACKENDS[name] = factory


def available_exec_backends() -> list[str]:
    """Registered execution-backend names, sorted."""
    return sorted(EXEC_BACKENDS)


_default_name: str | None = None


def set_default_exec_backend(name: str | None) -> str | None:
    """Set (or with ``None`` clear) the process default; returns the old."""
    global _default_name
    if name is not None and name not in EXEC_BACKENDS:
        raise ConfigError(
            f"unknown exec backend {name!r} "
            f"(registered: {', '.join(available_exec_backends())})")
    previous, _default_name = _default_name, name
    return previous


def default_exec_backend_name(jobs: int = 1) -> str:
    """Backend used when none is passed: explicit default, env, fallback.

    With nothing configured, ``jobs > 1`` resolves to ``pool`` (the
    historical ``--jobs N`` behaviour) and ``jobs == 1`` to ``inline``.
    """
    if _default_name is not None:
        return _default_name
    env = os.environ.get(EXEC_BACKEND_ENV, "").strip()
    if env:
        if env not in EXEC_BACKENDS:
            raise ConfigError(
                f"{EXEC_BACKEND_ENV}={env!r} names no registered backend "
                f"(registered: {', '.join(available_exec_backends())})")
        return env
    return "pool" if jobs > 1 else FALLBACK_EXEC_BACKEND


def make_exec_backend(backend: str | ExecBackend | None = None,
                      jobs: int = 1) -> ExecBackend:
    """Resolve ``backend`` (name, instance, or None = default) to a fresh
    instance sized for ``jobs`` workers."""
    if backend is None:
        backend = default_exec_backend_name(jobs)
    if isinstance(backend, ExecBackend):
        return backend
    try:
        factory = EXEC_BACKENDS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown exec backend {backend!r} "
            f"(registered: {', '.join(available_exec_backends())})"
        ) from None
    return factory(jobs)
