"""Fleet worker: the subprocess side of the ``subprocess`` exec backend.

Run as ``python -m repro.exec.fleet``.  Speaks a line-delimited JSON
protocol on stdin/stdout — one JSON object per line, one reply per job:

========================  ==================================================
parent -> worker          ``{"op": "init", "ctx": {...}}`` (once, first)
                          ``{"op": "job", "id": N, "point": <b64 pickle>,``
                          ``"trace": {...}?}`` (trace context, optional)
                          ``{"op": "shutdown"}``
worker -> parent          ``{"op": "result", "id": N, "record": <b64>,``
                          ``"spans": [...]?}`` (telemetry spans, optional)
                          ``{"op": "error", "id": N, "error": "..."}``
========================  ==================================================

The payloads are base64-pickled :class:`~repro.exec.points.SimPoint` /
:class:`~repro.exec.worker.PointRecord` objects; the *framing* is plain
JSON so a future remote worker (an HTTP endpoint, a container) only has
to speak these lines — nothing about process pools or shared memory
leaks into the protocol.

The worker is deliberately silent on stdout except for protocol replies:
anything else would corrupt the stream.  Simulation stderr passes
through untouched for debuggability.
"""

from __future__ import annotations

import json
import sys
import traceback


def serve(stdin, stdout) -> int:
    """Process protocol lines until shutdown/EOF; returns an exit code."""
    # Imports deferred so ``init`` can set the scheduler backend before
    # any engine state is touched — and so a protocol error in the very
    # first line doesn't pay the full model import.
    from ..obs.telemetry import TelemetryRecorder, using_telemetry
    from .backends import (WorkerContext, decode_point, encode_record,
                           init_worker)
    from .worker import compute_point

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            print(json.dumps({"op": "error", "id": None,
                              "error": f"malformed line: {line[:80]!r}"}),
                  file=stdout, flush=True)
            continue
        op = msg.get("op")
        if op == "shutdown":
            return 0
        if op == "init":
            init_worker(WorkerContext.from_dict(msg.get("ctx", {})))
            continue
        if op == "job":
            job_id = msg.get("id")
            trace = msg.get("trace")
            try:
                point = decode_point(msg["point"])
                if trace:
                    # A per-message recorder seeded with the parent's
                    # trace context: the worker's spans are children of
                    # the dispatching span across the process boundary,
                    # and travel home in the reply — never in the
                    # record, which must stay cache-identical whether
                    # or not the run was traced.
                    recorder = TelemetryRecorder(enabled=True,
                                                 context=trace)
                    with using_telemetry(recorder):
                        record = compute_point(point)
                    spans = recorder.drain()
                else:
                    record = compute_point(point)
                    spans = None
                reply = {"op": "result", "id": job_id,
                         "record": encode_record(record)}
                if spans:
                    reply["spans"] = spans
            except Exception:
                reply = {"op": "error", "id": job_id,
                         "error": traceback.format_exc(limit=20)}
            print(json.dumps(reply), file=stdout, flush=True)
            continue
        print(json.dumps({"op": "error", "id": msg.get("id"),
                          "error": f"unknown op {op!r}"}),
              file=stdout, flush=True)
    return 0


def main() -> int:
    return serve(sys.stdin, sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
