"""Fleet worker: the subprocess side of the ``subprocess`` exec backend.

Run as ``python -m repro.exec.fleet``.  Speaks a line-delimited JSON
protocol on stdin/stdout — one JSON object per line, one reply per job:

========================  ==================================================
parent -> worker          ``{"op": "init", "ctx": {...}}`` (once, first)
                          ``{"op": "job", "id": N, "point": <b64 pickle>}``
                          ``{"op": "shutdown"}``
worker -> parent          ``{"op": "result", "id": N, "record": <b64>}``
                          ``{"op": "error", "id": N, "error": "..."}``
========================  ==================================================

The payloads are base64-pickled :class:`~repro.exec.points.SimPoint` /
:class:`~repro.exec.worker.PointRecord` objects; the *framing* is plain
JSON so a future remote worker (an HTTP endpoint, a container) only has
to speak these lines — nothing about process pools or shared memory
leaks into the protocol.

The worker is deliberately silent on stdout except for protocol replies:
anything else would corrupt the stream.  Simulation stderr passes
through untouched for debuggability.
"""

from __future__ import annotations

import json
import sys
import traceback


def serve(stdin, stdout) -> int:
    """Process protocol lines until shutdown/EOF; returns an exit code."""
    # Imports deferred so ``init`` can set the scheduler backend before
    # any engine state is touched — and so a protocol error in the very
    # first line doesn't pay the full model import.
    from .backends import (WorkerContext, decode_point, encode_record,
                           init_worker)
    from .worker import compute_point

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            print(json.dumps({"op": "error", "id": None,
                              "error": f"malformed line: {line[:80]!r}"}),
                  file=stdout, flush=True)
            continue
        op = msg.get("op")
        if op == "shutdown":
            return 0
        if op == "init":
            init_worker(WorkerContext.from_dict(msg.get("ctx", {})))
            continue
        if op == "job":
            job_id = msg.get("id")
            try:
                record = compute_point(decode_point(msg["point"]))
                reply = {"op": "result", "id": job_id,
                         "record": encode_record(record)}
            except Exception:
                reply = {"op": "error", "id": job_id,
                         "error": traceback.format_exc(limit=20)}
            print(json.dumps(reply), file=stdout, flush=True)
            continue
        print(json.dumps({"op": "error", "id": msg.get("id"),
                          "error": f"unknown op {op!r}"}),
              file=stdout, flush=True)
    return 0


def main() -> int:
    return serve(sys.stdin, sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
