"""Parallel sweep execution with content-addressed result caching.

The paper's figures and tables are sweeps of independent simulation
points (machine x rank-count x benchmark).  This package decomposes those
sweeps into :class:`SimPoint` units, runs them through a
:class:`SweepExecutor` whose compute path is a pluggable execution
backend (:mod:`repro.exec.backends`: ``inline`` serial, ``pool`` process
fan-out, ``subprocess`` worker fleet), and merges results
deterministically so every backend produces byte-identical output.
Results are cached in a multi-tenant content-addressed store
(:mod:`repro.exec.cache`) shared safely between concurrent runs.
"""

from ..config import DEFAULT_CACHE_DIR, default_jobs
from .backends import (
    EXEC_BACKENDS,
    ExecBackend,
    ExecBackendError,
    WorkerContext,
    available_exec_backends,
    default_exec_backend_name,
    init_worker,
    make_exec_backend,
    register_exec_backend,
    set_default_exec_backend,
)
from .cache import ResultCache, source_fingerprint
from .executor import (
    SweepExecutor,
    get_executor,
    set_executor,
    using_executor,
)
from .locks import FileLock, LockTimeout
from .points import SimPoint
from .worker import PointRecord, compute_point

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXEC_BACKENDS",
    "ExecBackend",
    "ExecBackendError",
    "FileLock",
    "LockTimeout",
    "PointRecord",
    "ResultCache",
    "SimPoint",
    "SweepExecutor",
    "WorkerContext",
    "available_exec_backends",
    "compute_point",
    "default_exec_backend_name",
    "default_jobs",
    "get_executor",
    "init_worker",
    "make_exec_backend",
    "register_exec_backend",
    "set_default_exec_backend",
    "set_executor",
    "source_fingerprint",
    "using_executor",
]
