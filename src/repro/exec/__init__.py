"""Parallel sweep execution with content-addressed result caching.

The paper's figures and tables are sweeps of independent simulation
points (machine x rank-count x benchmark).  This package decomposes those
sweeps into :class:`SimPoint` units, runs them through a
:class:`SweepExecutor` (process fan-out + on-disk cache), and merges
results deterministically so serial and parallel runs are byte-identical.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, source_fingerprint
from .executor import (
    SweepExecutor,
    default_jobs,
    get_executor,
    set_executor,
    using_executor,
)
from .points import SimPoint
from .worker import PointRecord, compute_point

__all__ = [
    "DEFAULT_CACHE_DIR",
    "PointRecord",
    "ResultCache",
    "SimPoint",
    "SweepExecutor",
    "compute_point",
    "default_jobs",
    "get_executor",
    "set_executor",
    "source_fingerprint",
    "using_executor",
]
