"""Parallel sweep executor with deterministic merge order.

:class:`SweepExecutor` takes a list of independent simulation points,
satisfies what it can from the result cache, hands the misses to an
execution backend (:mod:`repro.exec.backends` — ``inline``, ``pool``, or
``subprocess``), and returns values **in the order the points were
given**.  Serial, pooled, and fleet runs therefore produce byte-identical
figures, CSVs and tables — the backend changes only the wall clock.

The active executor is ambient per *thread*: library code (the
figure/table builders) calls :func:`get_executor`, which defaults to a
serial, cache-less executor so plain API use and the test-suite behave
exactly as before; the CLI harness installs a configured executor around
a run via :func:`using_executor`, and the sweep service gives each of
its worker threads an executor of its own without them stomping on each
other.

When a :class:`~repro.service.coalesce.PointCoalescer` is attached,
concurrent executors that miss the cache on the *same* point fingerprint
share one computation: the first claimant computes and publishes, the
rest wait and record the point as ``coalesced`` provenance.
"""

from __future__ import annotations

import contextlib
import threading
import time
import warnings
from collections.abc import Sequence
from time import perf_counter
from typing import Any

from ..config import default_jobs as _default_jobs
from ..core import sched
from ..obs.commviz import get_commviz
from ..obs.energy import get_energy
from ..obs.metrics import get_metrics
from ..obs.telemetry import get_telemetry
from ..obs.timeline import get_timeline
from .backends import ExecBackend, ExecBackendError, make_exec_backend
from .cache import ResultCache
from .points import SimPoint
from .worker import PointRecord, compute_point


def default_jobs() -> int:
    """Deprecated: moved to :func:`repro.config.default_jobs`."""
    warnings.warn(
        "repro.exec.executor.default_jobs is deprecated; use "
        "repro.config.default_jobs (re-exported as repro.exec.default_jobs)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _default_jobs()


class SweepExecutor:
    """Runs batches of :class:`SimPoint` with caching and backend fan-out."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 backend: str | ExecBackend | None = None,
                 coalescer=None) -> None:
        self.jobs = _default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self.backend = make_exec_backend(backend, self.jobs)
        self.coalescer = coalescer
        # Cumulative instrumentation (see stats()).
        self.points_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.requeued = 0
        self.events = 0
        self.compute_wall_s = 0.0
        #: Per-point provenance log in submission order: each entry is
        #: {"point", "provenance" ("cached"|"computed"|"coalesced"),
        #: "wall_s", "events"} so every report can tell cached points
        #: from freshly simulated ones.
        self.point_log: list[dict] = []

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release backend worker resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def run_points(self, points: Sequence[SimPoint]) -> list[Any]:
        """Compute every point; values returned in input order."""
        tel = get_telemetry()
        if not tel.enabled:
            return self._run_points(points, None)
        with tel.span("sweep.batch", "exec", points=len(points),
                      backend=self.backend.name):
            return self._run_points(points, tel)

    def _run_points(self, points: Sequence[SimPoint], tel) -> list[Any]:
        records: list[PointRecord | None] = [None] * len(points)
        misses: list[tuple[int, SimPoint]] = []
        fresh_idx: set[int] = set()
        coalesced_idx: set[int] = set()
        for i, pt in enumerate(points):
            t_h0 = time.time() if tel is not None else 0.0
            rec = self._cache_get(pt)
            if rec is not None:
                records[i] = rec
                if tel is not None:
                    # Exact lookup timing: cache hits are real (if tiny)
                    # phases of the job, and the trace must show them.
                    tel.record("point.cache_hit", "exec",
                               t_start=t_h0, t_end=time.time(),
                               point=pt.key())
            else:
                misses.append((i, pt))

        # Counted exactly once per *submitted* point, before any compute:
        # the worker-crash requeue path below re-runs misses without
        # re-entering run_points, so a requeued point can never be
        # double-counted in stats() (it used to be, when the retry called
        # run_points again on the unfinished tail).
        self.points_total += len(points)
        self.cache_hits += len(points) - len(misses)
        self.cache_misses += len(misses)

        if misses:
            dspan = tel.begin("exec.dispatch", "exec",
                              backend=self.backend.name,
                              points=len(misses)) if tel is not None else None
            t0 = perf_counter()
            try:
                computed, owned = self._compute_misses(
                    [pt for _i, pt in misses])
            except BaseException:
                if tel is not None:
                    tel.end(dspan, status="error")
                raise
            self.compute_wall_s += perf_counter() - t0
            if tel is not None:
                tel.end(dspan)
            for ((i, pt), rec, is_owned) in zip(misses, computed, owned):
                records[i] = rec
                (fresh_idx if is_owned else coalesced_idx).add(i)

        self.coalesced += len(coalesced_idx)
        self.events += sum(r.events for r in records)
        self._observe(points, records, fresh_idx, coalesced_idx)
        return [r.value for r in records]

    def _cache_get(self, pt: SimPoint) -> PointRecord | None:
        rec = self.cache.get(pt) if self.cache is not None else None
        if rec is not None and ((get_commviz().enabled and rec.comm is None)
                                or (get_timeline().enabled
                                    and rec.timeline is None)
                                or (get_energy().enabled
                                    and getattr(rec, "energy", None)
                                    is None)):
            # Cached before comm/timeline/energy collection was switched
            # on: recompute so the report never shows an empty matrix or
            # zero joules for work that did run.  The refreshed record
            # replaces it.
            return None
        return rec

    def _cache_put(self, pt: SimPoint, rec: PointRecord) -> None:
        if self.cache is not None:
            self.cache.put(pt, rec)

    def _compute_misses(self, pts: list[SimPoint],
                        ) -> tuple[list[PointRecord], list[bool]]:
        """Compute cache misses; returns (records, owned-by-us flags).

        Without a coalescer every miss is owned (computed here).  With
        one, misses whose fingerprint is already in flight in a sibling
        executor wait for the sibling's record instead of recomputing;
        owned points are published for those siblings once done.

        Records are written to the cache *here*, before their flight is
        retired — a claim is only ever granted ownership when the point
        is durably absent, so a sibling arriving at any moment finds the
        point either in the cache or in flight, never in between.
        """
        if self.coalescer is None:
            records = self._compute_with_requeue(pts)
            for pt, rec in zip(pts, records):
                self._cache_put(pt, rec)
            return records, [True] * len(pts)

        tel = get_telemetry()
        tag = sched.backend_result_tag()
        claims = [self.coalescer.claim(
            pt.key() if tag is None else f"{pt.key()}\n{tag}")
            for pt in pts]
        records: list[PointRecord | None] = [None] * len(pts)
        owned_flags = [c.owner for c in claims]
        owned_pairs: list[tuple[int, SimPoint]] = []
        for j, (pt, claim) in enumerate(zip(pts, claims)):
            if not claim.owner:
                continue
            # This executor missed, then won the claim — but a sibling
            # may have published and retired the same point in between.
            # Re-check under ownership so that gap never recomputes.
            rec = self._cache_get(pt)
            if rec is not None:
                records[j] = rec
                owned_flags[j] = False  # computed elsewhere, like a join
                claim.publish(rec)
            else:
                if tel.enabled:
                    # Stamp the owner's causal position on the flight so
                    # waiters in sibling jobs can link their coalesced
                    # spans to the computation they piggybacked on.
                    claim.set_owner_ctx(tel.inject())
                owned_pairs.append((j, pt))
        try:
            owned_records = self._compute_with_requeue(
                [pt for _j, pt in owned_pairs])
        except BaseException as exc:
            for j, _pt in owned_pairs:
                claims[j].fail(exc)
            raise
        for (j, pt), rec in zip(owned_pairs, owned_records):
            records[j] = rec
            self._cache_put(pt, rec)  # durable before the flight retires
            claims[j].publish(rec)
        for j, claim in enumerate(claims):
            if records[j] is not None or claim.owner:
                continue
            t_w0 = time.time() if tel.enabled else 0.0
            rec = claim.wait()
            if rec is None:
                # The owner failed; compute it ourselves rather than
                # propagating someone else's crash into this job.
                rec = compute_point(pts[j])
                self._cache_put(pts[j], rec)
                owned_flags[j] = True
            elif tel.enabled:
                octx = claim.owner_ctx() or {}
                tel.record("point.coalesced", "exec",
                           t_start=t_w0, t_end=time.time(),
                           point=pts[j].key(),
                           owner_trace_id=octx.get("trace_id"),
                           owner_span_id=octx.get("parent_span_id"))
            records[j] = rec
        return records, owned_flags

    def _compute_with_requeue(self, pts: list[SimPoint]) -> list[PointRecord]:
        """Backend compute with inline requeue of transport casualties.

        A worker-fleet/pool crash loses some points but not the batch:
        whatever finished is kept, the rest are recomputed inline so the
        sweep still completes (and ``requeued`` counts the casualties).
        """
        if not pts:
            return []
        try:
            return list(self.backend.compute(pts))
        except ExecBackendError as exc:
            tel = get_telemetry()
            out: list[PointRecord] = []
            for i, pt in enumerate(pts):
                rec = exc.done.get(i)
                if rec is None:
                    if tel.enabled:
                        # The inline recompute traces itself (it runs
                        # under this thread's ambient recorder); mark
                        # *why* it ran with a requeue span around it.
                        with tel.span("point.requeue", "exec",
                                      point=pt.key(), error=str(exc)[:200]):
                            rec = compute_point(pt)
                    else:
                        rec = compute_point(pt)
                    self.requeued += 1
                out.append(rec)
            return out

    def _observe(self, points: Sequence[SimPoint],
                 records: Sequence[PointRecord],
                 fresh_idx: set[int],
                 coalesced_idx: set[int] = frozenset()) -> None:
        """Provenance log + metrics/comm/timeline fan-in for one batch.

        Only freshly computed points merge their simulation metrics into
        the ambient registry — a cached (or coalesced: computed by a
        sibling executor) point's engine events were *not* executed by
        this executor, and counting them would make ``engine.events``
        disagree with reality.  Cached points are visible instead through
        ``cache.hits`` and their ``provenance`` tag.

        Comm matrices, timelines and energy are the opposite case: they
        are pure virtual-time facts of the simulated run, identical
        whether the point was recomputed or replayed from the cache, so
        *every* point's snapshot merges — in input order, which is what
        makes serial, parallel, and cache-warm sweeps byte-identical.
        """
        registry = get_metrics()
        commrec = get_commviz()
        tlrec = get_timeline()
        enrec = get_energy()
        for i, pt in enumerate(points):
            rec = records[i]
            fresh = i in fresh_idx
            provenance = ("computed" if fresh
                          else "coalesced" if i in coalesced_idx
                          else "cached")
            self.point_log.append({
                "point": pt.key(),
                "provenance": provenance,
                "wall_s": round(rec.wall_s, 6),
                "events": rec.events,
            })
            if registry.enabled and fresh:
                registry.histogram("exec.point_wall_s").observe(rec.wall_s)
                if rec.metrics is not None:
                    registry.merge(rec.metrics)
            if commrec.enabled and rec.comm is not None:
                commrec.merge(rec.comm)
            if tlrec.enabled and rec.timeline is not None:
                tlrec.merge(rec.timeline)
            rec_energy = getattr(rec, "energy", None)
            if enrec.enabled and rec_energy is not None:
                enrec.merge(rec_energy)
        if registry.enabled:
            n_fresh = len(fresh_idx)
            registry.counter("exec.points").inc(len(points))
            registry.counter("cache.hits").inc(
                len(points) - n_fresh - len(coalesced_idx))
            registry.counter("cache.misses").inc(n_fresh)
            if coalesced_idx:
                registry.counter("exec.coalesced").inc(len(coalesced_idx))

    def stats(self) -> dict:
        """Cumulative counters since construction (snapshot-and-diff safe)."""
        return {
            "points": self.points_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "requeued": self.requeued,
            "events": self.events,
            "compute_wall_s": self.compute_wall_s,
        }

    def backend_health(self) -> dict | None:
        """Worker-health counters of the backend, if it keeps any.

        The ``subprocess`` fleet counts workers spawned, requests
        served, crashes, and post-crash restarts; backends without
        worker processes return None.
        """
        health = getattr(self.backend, "health", None)
        return dict(health) if health else None


# -- thread-ambient executor context ----------------------------------------

_tls = threading.local()
_default: SweepExecutor | None = None
_default_lock = threading.Lock()


def get_executor() -> SweepExecutor:
    """The active executor (a serial, cache-less one if none installed).

    The active executor is per-thread (see :func:`using_executor`); the
    fallback default is shared process-wide.
    """
    global _default
    current = getattr(_tls, "current", None)
    if current is not None:
        return current
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = SweepExecutor(jobs=1, cache=None,
                                         backend="inline")
    return _default


def set_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Install ``executor`` as this thread's ambient one; returns the old."""
    previous = getattr(_tls, "current", None)
    _tls.current = executor
    return previous


@contextlib.contextmanager
def using_executor(executor: SweepExecutor):
    """Scope ``executor`` as the active one for a ``with`` block.

    Thread-local: concurrent service jobs each install their own
    executor without interfering.
    """
    previous = set_executor(executor)
    try:
        yield executor
    finally:
        set_executor(previous)
