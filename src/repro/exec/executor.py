"""Parallel sweep executor with deterministic merge order.

:class:`SweepExecutor` takes a list of independent simulation points,
satisfies what it can from the result cache, fans the misses out over a
``ProcessPoolExecutor`` (or computes them inline when ``jobs == 1``), and
returns values **in the order the points were given**.  Serial and
parallel runs therefore produce byte-identical figures, CSVs and tables —
parallelism changes only the wall clock.

The active executor is process-global: library code (the figure/table
builders) calls :func:`get_executor`, which defaults to a serial,
cache-less executor so plain API use and the test-suite behave exactly as
before; the CLI harness installs a configured executor around a run via
:func:`using_executor`.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence
from time import perf_counter
from typing import Any

from .cache import ResultCache
from .points import SimPoint
from .worker import PointRecord, compute_point


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else the host CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


class SweepExecutor:
    """Runs batches of :class:`SimPoint` with caching and process fan-out."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self._pool: ProcessPoolExecutor | None = None
        # Cumulative instrumentation (see stats()).
        self.points_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.events = 0
        self.compute_wall_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def run_points(self, points: Sequence[SimPoint]) -> list[Any]:
        """Compute every point; values returned in input order."""
        records: list[PointRecord | None] = [None] * len(points)
        misses: list[tuple[int, SimPoint]] = []
        for i, pt in enumerate(points):
            rec = self.cache.get(pt) if self.cache is not None else None
            if rec is not None:
                records[i] = rec
            else:
                misses.append((i, pt))

        if misses:
            t0 = perf_counter()
            if self.jobs > 1 and len(misses) > 1:
                pool = self._get_pool()
                computed = list(pool.map(compute_point,
                                         [pt for _i, pt in misses]))
            else:
                computed = [compute_point(pt) for _i, pt in misses]
            self.compute_wall_s += perf_counter() - t0
            for (i, pt), rec in zip(misses, computed):
                records[i] = rec
                if self.cache is not None:
                    self.cache.put(pt, rec)

        self.points_total += len(points)
        self.cache_hits += len(points) - len(misses)
        self.cache_misses += len(misses)
        self.events += sum(r.events for r in records)
        return [r.value for r in records]

    def stats(self) -> dict:
        """Cumulative counters since construction (snapshot-and-diff safe)."""
        return {
            "points": self.points_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "events": self.events,
            "compute_wall_s": self.compute_wall_s,
        }


# -- process-global executor context ----------------------------------------

_current: SweepExecutor | None = None
_default: SweepExecutor | None = None


def get_executor() -> SweepExecutor:
    """The active executor (a serial, cache-less one if none installed)."""
    global _default
    if _current is not None:
        return _current
    if _default is None:
        _default = SweepExecutor(jobs=1, cache=None)
    return _default


def set_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Install ``executor`` as the process-global default; returns the old."""
    global _current
    previous, _current = _current, executor
    return previous


@contextlib.contextmanager
def using_executor(executor: SweepExecutor):
    """Scope ``executor`` as the active one for a ``with`` block."""
    previous = set_executor(executor)
    try:
        yield executor
    finally:
        set_executor(previous)
