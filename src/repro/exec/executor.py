"""Parallel sweep executor with deterministic merge order.

:class:`SweepExecutor` takes a list of independent simulation points,
satisfies what it can from the result cache, fans the misses out over a
``ProcessPoolExecutor`` (or computes them inline when ``jobs == 1``), and
returns values **in the order the points were given**.  Serial and
parallel runs therefore produce byte-identical figures, CSVs and tables —
parallelism changes only the wall clock.

The active executor is process-global: library code (the figure/table
builders) calls :func:`get_executor`, which defaults to a serial,
cache-less executor so plain API use and the test-suite behave exactly as
before; the CLI harness installs a configured executor around a run via
:func:`using_executor`.
"""

from __future__ import annotations

import contextlib
import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Sequence
from time import perf_counter
from typing import Any

from ..core import sched
from ..obs.commviz import get_commviz
from ..obs.metrics import get_metrics
from ..obs.timeline import get_timeline
from .cache import ResultCache
from .points import SimPoint
from .worker import PointRecord, compute_point, init_worker_metrics


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else the host CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


class SweepExecutor:
    """Runs batches of :class:`SimPoint` with caching and process fan-out."""

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self._pool: ProcessPoolExecutor | None = None
        # Cumulative instrumentation (see stats()).
        self.points_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.events = 0
        self.compute_wall_s = 0.0
        #: Per-point provenance log in submission order: each entry is
        #: {"point", "provenance" ("cached"|"computed"), "wall_s",
        #: "events"} so every report can tell cached points from
        #: freshly simulated ones.
        self.point_log: list[dict] = []

    # -- lifecycle ----------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=init_worker_metrics,
                initargs=(get_metrics().enabled, get_commviz().enabled,
                          get_timeline().enabled,
                          sched.default_backend_name()),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def run_points(self, points: Sequence[SimPoint]) -> list[Any]:
        """Compute every point; values returned in input order."""
        records: list[PointRecord | None] = [None] * len(points)
        misses: list[tuple[int, SimPoint]] = []
        fresh_idx: set[int] = set()
        comm_on = get_commviz().enabled
        tl_on = get_timeline().enabled
        for i, pt in enumerate(points):
            rec = self.cache.get(pt) if self.cache is not None else None
            if rec is not None and ((comm_on and rec.comm is None)
                                    or (tl_on and rec.timeline is None)):
                # Cached before comm/timeline collection was switched on:
                # recompute so the report never shows an empty matrix for
                # work that did run.  The refreshed record replaces it.
                rec = None
            if rec is not None:
                records[i] = rec
            else:
                misses.append((i, pt))
                fresh_idx.add(i)

        if misses:
            t0 = perf_counter()
            if self.jobs > 1 and len(misses) > 1:
                pool = self._get_pool()
                computed = list(pool.map(compute_point,
                                         [pt for _i, pt in misses]))
            else:
                computed = [compute_point(pt) for _i, pt in misses]
            self.compute_wall_s += perf_counter() - t0
            for (i, pt), rec in zip(misses, computed):
                records[i] = rec
                if self.cache is not None:
                    self.cache.put(pt, rec)

        self.points_total += len(points)
        self.cache_hits += len(points) - len(misses)
        self.cache_misses += len(misses)
        self.events += sum(r.events for r in records)
        self._observe(points, records, fresh_idx)
        return [r.value for r in records]

    def _observe(self, points: Sequence[SimPoint],
                 records: Sequence[PointRecord],
                 fresh_idx: set[int]) -> None:
        """Provenance log + metrics/comm/timeline fan-in for one batch.

        Only freshly computed points merge their simulation metrics into
        the ambient registry — a cached point's engine events were *not*
        executed this run, and counting them would make ``engine.events``
        disagree with reality.  Cached points are visible instead through
        ``cache.hits`` and their ``provenance`` tag.

        Comm matrices and timelines are the opposite case: they are pure
        virtual-time facts of the simulated run, identical whether the
        point was recomputed or replayed from the cache, so *every*
        point's snapshot merges — in input order, which is what makes
        serial, parallel, and cache-warm sweeps byte-identical.
        """
        registry = get_metrics()
        commrec = get_commviz()
        tlrec = get_timeline()
        for i, pt in enumerate(points):
            rec = records[i]
            fresh = i in fresh_idx
            self.point_log.append({
                "point": pt.key(),
                "provenance": "computed" if fresh else "cached",
                "wall_s": round(rec.wall_s, 6),
                "events": rec.events,
            })
            if registry.enabled and fresh:
                registry.histogram("exec.point_wall_s").observe(rec.wall_s)
                if rec.metrics is not None:
                    registry.merge(rec.metrics)
            if commrec.enabled and rec.comm is not None:
                commrec.merge(rec.comm)
            if tlrec.enabled and rec.timeline is not None:
                tlrec.merge(rec.timeline)
        if registry.enabled:
            n_fresh = len(fresh_idx)
            registry.counter("exec.points").inc(len(points))
            registry.counter("cache.hits").inc(len(points) - n_fresh)
            registry.counter("cache.misses").inc(n_fresh)

    def stats(self) -> dict:
        """Cumulative counters since construction (snapshot-and-diff safe)."""
        return {
            "points": self.points_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "events": self.events,
            "compute_wall_s": self.compute_wall_s,
        }


# -- process-global executor context ----------------------------------------

_current: SweepExecutor | None = None
_default: SweepExecutor | None = None


def get_executor() -> SweepExecutor:
    """The active executor (a serial, cache-less one if none installed)."""
    global _default
    if _current is not None:
        return _current
    if _default is None:
        _default = SweepExecutor(jobs=1, cache=None)
    return _default


def set_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Install ``executor`` as the process-global default; returns the old."""
    global _current
    previous, _current = _current, executor
    return previous


@contextlib.contextmanager
def using_executor(executor: SweepExecutor):
    """Scope ``executor`` as the active one for a ``with`` block."""
    previous = set_executor(executor)
    try:
        yield executor
    finally:
        set_executor(previous)
