"""Point computation: the function that runs inside worker processes.

:func:`compute_point` maps a :class:`~repro.exec.points.SimPoint` to its
result.  It is a pure function of the point plus the source tree, defined
at module level so :class:`concurrent.futures.ProcessPoolExecutor` can
pickle it, and it only imports model layers (machine / hpcc / imb) —
never the harness — to keep the import graph acyclic.

Each computation is timed and annotated with the number of simulation
events the engine executed, so the executor can report events/sec without
re-running anything.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..core.engine import EVENT_STATS
from ..obs.commviz import CommRecorder, get_commviz, using_commviz
from ..obs.energy import EnergyRecorder, get_energy, using_energy
from ..obs.metrics import MetricsRegistry, get_metrics, using_metrics
from ..obs.telemetry import get_telemetry
from ..obs.timeline import TimelineRecorder, get_timeline, using_timeline
from ..hpcc import RingConfig, hpl_model_time, run_hpcc, run_ring, run_stream
from ..hpcc.suite import scaled_config
from ..imb.framework import PAPER_MSG_BYTES
from ..imb.suite import run_benchmark
from ..machine import get_machine
from .points import SimPoint


@dataclass(frozen=True)
class PointRecord:
    """A computed point: the value plus execution metadata.

    ``wall_s`` and ``events`` describe the original computation; they are
    stored in the cache with the value so cached runs can still report a
    meaningful perf trajectory.  ``metrics`` is a per-point registry
    snapshot (see :mod:`repro.obs.metrics`), captured only when metrics
    were enabled at computation time; the executor merges fresh points'
    snapshots into the ambient registry in input order.  ``comm``,
    ``timeline`` and ``energy`` are commviz/timeline/energy snapshots of
    the same point — pure virtual-time facts, so unlike host-side
    metrics they are merged for cached points too (a cache hit replays
    the same traffic, occupancy and joules the original simulation
    produced).
    """

    value: Any
    wall_s: float
    events: int
    metrics: dict | None = None
    comm: dict | None = None
    timeline: dict | None = None
    energy: dict | None = None


def init_worker_metrics(enabled: bool, comm: bool = False,
                        timeline: bool = False,
                        engine_backend: str | None = None) -> None:
    """Deprecated: use :func:`repro.exec.backends.init_worker`.

    The positional initargs tuple was collapsed into one
    :class:`~repro.exec.backends.WorkerContext`; this shim forwards for
    backward compatibility and will be removed in a future release.
    """
    import warnings

    warnings.warn(
        "repro.exec.worker.init_worker_metrics is deprecated; use "
        "repro.exec.backends.init_worker(WorkerContext(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .backends import WorkerContext, init_worker

    init_worker(WorkerContext(metrics=enabled, comm=comm, timeline=timeline,
                              engine_backend=engine_backend))


def point_machine(point: SimPoint):
    """Resolve a point's machine, including user-defined projections.

    Scenario files may declare machines that exist only in their TOML
    (``machine_base``/``machine_cpus``/``machine_label`` params): the
    projection recipe rides on the point itself, so any worker process
    can rebuild the machine and the params salt the cache key — two
    different projections never share cache entries.
    """
    base = point.param("machine_base")
    if base is None:
        return get_machine(point.machine)
    from dataclasses import replace

    m = get_machine(base).scaled(int(point.param("machine_cpus")),
                                 name=point.machine)
    label = point.param("machine_label")
    if label is not None:
        m = replace(m, label=str(label))
    return m


def _fault_setup(point: SimPoint):
    """Build the ``fabric_setup`` hook for a fault-injection point.

    Returns None for healthy points so they keep the exact legacy
    code path (including the IMB macro fast-path, which a degraded
    fabric must bypass).
    """
    kind = point.param("fault")
    if kind is None:
        return None
    from ..machine import faults

    if kind == "slow_node":
        node = int(point.param("fault_node", 0))
        factor = float(point.param("fault_factor"))
        return lambda fabric: faults.slow_node(fabric, node=node,
                                               factor=factor)
    if kind == "degrade_core":
        level = int(point.param("fault_level", 0))
        factor = float(point.param("fault_factor"))
        return lambda fabric: faults.degrade_core(fabric, level=level,
                                                  factor=factor)
    if kind == "add_latency":
        extra_s = float(point.param("fault_extra_us")) * 1e-6
        return lambda fabric: faults.add_latency(fabric, extra_s)
    raise ValueError(f"unknown fault kind {kind!r}")


def _ring_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated random-ring GB/s) at one rank count."""
    m = point_machine(point)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    ring = run_ring(m, p, RingConfig(n_rings=point.param("n_rings", 4)))
    return (hpl, ring.accumulated_gbs)


def _stream_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated EP-STREAM Copy GB/s) at one rank count."""
    m = point_machine(point)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    stream = run_stream(m, min(p, 8))  # embarrassingly parallel
    return (hpl, stream.copy_gbs * p)


def _hpcc(point: SimPoint):
    """Full HPCC suite at one configuration -> HPCCResult."""
    m = point_machine(point)
    return run_hpcc(m, point.nprocs, scaled_config(point.nprocs))


def _imb(point: SimPoint):
    """One IMB benchmark measurement -> IMBResult."""
    m = point_machine(point)
    return run_benchmark(
        m,
        point.param("benchmark"),
        point.nprocs,
        msg_bytes=point.param("msg_bytes", PAPER_MSG_BYTES),
        fabric_setup=_fault_setup(point),
    )


def _app(point: SimPoint):
    """One mini-app run (repro.apps) -> CG/Spectral/AMR result."""
    from ..apps import run_amr, run_cg, run_spectral

    runners = {"cg": run_cg, "spectral": run_spectral, "amr": run_amr}
    app = point.param("app")
    try:
        fn = runners[app]
    except KeyError:
        raise ValueError(f"unknown app {app!r} "
                         f"(known: {', '.join(runners)})") from None
    return fn(point_machine(point), point.nprocs)


def _hpcc_verify(point: SimPoint):
    """HPCC numeric verification battery -> VerificationReport."""
    from ..hpcc.verification import run_verification

    return run_verification(point_machine(point), nprocs=point.nprocs)


_COMPUTE = {
    "ring_hpl": _ring_hpl,
    "stream_hpl": _stream_hpl,
    "hpcc": _hpcc,
    "imb": _imb,
    "app": _app,
    "hpcc_verify": _hpcc_verify,
}


def point_phase(point: SimPoint) -> str:
    """Commviz/timeline phase name for one point.

    ``imb`` points carry the benchmark name (``imb:xeon:Alltoall``) so
    every IMB figure reads back as its own traffic pattern; everything
    else is ``kind:machine``.
    """
    bench = point.param("benchmark")
    base = f"{point.kind}:{point.machine}"
    return f"{base}:{bench}" if bench else base


def compute_point(point: SimPoint) -> PointRecord:
    """Compute one simulation point; safe to call in any process.

    When the ambient metrics registry (or commviz/timeline recorder) is
    enabled, the point runs under fresh child instances whose snapshots
    travel back in the record — per-point isolation is what makes the
    parallel fan-in merge equal to a serial run, and lets cached points
    carry their original observations.
    """
    try:
        fn = _COMPUTE[point.kind]
    except KeyError:
        raise ValueError(f"unknown simulation point kind {point.kind!r}") from None
    collect = get_metrics().enabled
    comm_on = get_commviz().enabled
    tl_on = get_timeline().enabled
    en_on = get_energy().enabled
    # Telemetry traces the *host-side* act of computing — the span rides
    # on the ambient recorder (or, in a fleet worker, travels back in
    # the protocol reply), never on the record: records are pickled into
    # the content-addressed cache and per-run trace ids there would
    # break traced==untraced byte-identity.
    tel = get_telemetry()
    tspan = tel.begin("point.compute", "point",
                      point=point.key(), kind=point.kind,
                      machine=point.machine, nprocs=point.nprocs) \
        if tel.enabled else None
    ev0 = EVENT_STATS["processed"]
    t0 = perf_counter()
    snapshot = comm_snap = tl_snap = en_snap = None
    try:
        if collect or comm_on or tl_on or en_on:
            child = commrec = tlrec = enrec = None
            with contextlib.ExitStack() as stack:
                if collect:
                    child = MetricsRegistry(enabled=True)
                    stack.enter_context(using_metrics(child))
                if comm_on:
                    commrec = CommRecorder(enabled=True)
                    commrec.set_phase(point_phase(point))
                    stack.enter_context(using_commviz(commrec))
                if tl_on:
                    tlrec = TimelineRecorder(enabled=True)
                    tlrec.set_phase(point_phase(point))
                    stack.enter_context(using_timeline(tlrec))
                if en_on:
                    enrec = EnergyRecorder(enabled=True)
                    enrec.set_phase(point_phase(point))
                    stack.enter_context(using_energy(enrec))
                value = fn(point)
            if child is not None:
                snapshot = child.snapshot()
            if commrec is not None:
                comm_snap = commrec.snapshot()
            if tlrec is not None:
                tl_snap = tlrec.snapshot()
            if enrec is not None:
                en_snap = enrec.snapshot()
        else:
            value = fn(point)
    except BaseException:
        tel.end(tspan, status="error")
        raise
    wall = perf_counter() - t0
    tel.end(tspan)
    return PointRecord(value=value, wall_s=wall,
                       events=EVENT_STATS["processed"] - ev0,
                       metrics=snapshot, comm=comm_snap, timeline=tl_snap,
                       energy=en_snap)
