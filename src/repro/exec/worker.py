"""Point computation: the function that runs inside worker processes.

:func:`compute_point` maps a :class:`~repro.exec.points.SimPoint` to its
result.  It is a pure function of the point plus the source tree, defined
at module level so :class:`concurrent.futures.ProcessPoolExecutor` can
pickle it, and it only imports model layers (machine / hpcc / imb) —
never the harness — to keep the import graph acyclic.

Each computation is timed and annotated with the number of simulation
events the engine executed, so the executor can report events/sec without
re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..core.engine import EVENT_STATS
from ..obs.metrics import MetricsRegistry, get_metrics, set_metrics, using_metrics
from ..hpcc import RingConfig, hpl_model_time, run_hpcc, run_ring, run_stream
from ..hpcc.suite import scaled_config
from ..imb.framework import PAPER_MSG_BYTES
from ..imb.suite import run_benchmark
from ..machine import get_machine
from .points import SimPoint


@dataclass(frozen=True)
class PointRecord:
    """A computed point: the value plus execution metadata.

    ``wall_s`` and ``events`` describe the original computation; they are
    stored in the cache with the value so cached runs can still report a
    meaningful perf trajectory.  ``metrics`` is a per-point registry
    snapshot (see :mod:`repro.obs.metrics`), captured only when metrics
    were enabled at computation time; the executor merges fresh points'
    snapshots into the ambient registry in input order.
    """

    value: Any
    wall_s: float
    events: int
    metrics: dict | None = None


def init_worker_metrics(enabled: bool) -> None:
    """Process-pool initializer: mirror the parent's metrics switch.

    Worker processes start with the shared disabled registry; when the
    parent harness runs with metrics on, each worker gets its own
    enabled registry so :func:`compute_point` collects per-point
    snapshots for the deterministic fan-in merge.
    """
    if enabled:
        set_metrics(MetricsRegistry(enabled=True))


def _ring_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated random-ring GB/s) at one rank count."""
    m = get_machine(point.machine)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    ring = run_ring(m, p, RingConfig(n_rings=point.param("n_rings", 4)))
    return (hpl, ring.accumulated_gbs)


def _stream_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated EP-STREAM Copy GB/s) at one rank count."""
    m = get_machine(point.machine)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    stream = run_stream(m, min(p, 8))  # embarrassingly parallel
    return (hpl, stream.copy_gbs * p)


def _hpcc(point: SimPoint):
    """Full HPCC suite at one configuration -> HPCCResult."""
    m = get_machine(point.machine)
    return run_hpcc(m, point.nprocs, scaled_config(point.nprocs))


def _imb(point: SimPoint):
    """One IMB benchmark measurement -> IMBResult."""
    m = get_machine(point.machine)
    return run_benchmark(
        m,
        point.param("benchmark"),
        point.nprocs,
        msg_bytes=point.param("msg_bytes", PAPER_MSG_BYTES),
    )


def _hpcc_verify(point: SimPoint):
    """HPCC numeric verification battery -> VerificationReport."""
    from ..hpcc.verification import run_verification

    return run_verification(get_machine(point.machine), nprocs=point.nprocs)


_COMPUTE = {
    "ring_hpl": _ring_hpl,
    "stream_hpl": _stream_hpl,
    "hpcc": _hpcc,
    "imb": _imb,
    "hpcc_verify": _hpcc_verify,
}


def compute_point(point: SimPoint) -> PointRecord:
    """Compute one simulation point; safe to call in any process.

    When the ambient metrics registry is enabled, the point runs under a
    fresh child registry whose snapshot travels back in the record —
    per-point isolation is what makes the parallel fan-in merge equal to
    a serial run, and lets cached points carry their original metrics.
    """
    try:
        fn = _COMPUTE[point.kind]
    except KeyError:
        raise ValueError(f"unknown simulation point kind {point.kind!r}") from None
    collect = get_metrics().enabled
    ev0 = EVENT_STATS["processed"]
    t0 = perf_counter()
    if collect:
        child = MetricsRegistry(enabled=True)
        with using_metrics(child):
            value = fn(point)
        snapshot = child.snapshot()
    else:
        value = fn(point)
        snapshot = None
    wall = perf_counter() - t0
    return PointRecord(value=value, wall_s=wall,
                       events=EVENT_STATS["processed"] - ev0,
                       metrics=snapshot)
