"""Point computation: the function that runs inside worker processes.

:func:`compute_point` maps a :class:`~repro.exec.points.SimPoint` to its
result.  It is a pure function of the point plus the source tree, defined
at module level so :class:`concurrent.futures.ProcessPoolExecutor` can
pickle it, and it only imports model layers (machine / hpcc / imb) —
never the harness — to keep the import graph acyclic.

Each computation is timed and annotated with the number of simulation
events the engine executed, so the executor can report events/sec without
re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..core.engine import EVENT_STATS
from ..hpcc import RingConfig, hpl_model_time, run_hpcc, run_ring, run_stream
from ..hpcc.suite import scaled_config
from ..imb.framework import PAPER_MSG_BYTES
from ..imb.suite import run_benchmark
from ..machine import get_machine
from .points import SimPoint


@dataclass(frozen=True)
class PointRecord:
    """A computed point: the value plus execution metadata.

    ``wall_s`` and ``events`` describe the original computation; they are
    stored in the cache with the value so cached runs can still report a
    meaningful perf trajectory.
    """

    value: Any
    wall_s: float
    events: int


def _ring_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated random-ring GB/s) at one rank count."""
    m = get_machine(point.machine)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    ring = run_ring(m, p, RingConfig(n_rings=point.param("n_rings", 4)))
    return (hpl, ring.accumulated_gbs)


def _stream_hpl(point: SimPoint) -> tuple[float, float]:
    """(HPL TFlop/s, accumulated EP-STREAM Copy GB/s) at one rank count."""
    m = get_machine(point.machine)
    p = point.nprocs
    hpl = hpl_model_time(m, p).tflops
    stream = run_stream(m, min(p, 8))  # embarrassingly parallel
    return (hpl, stream.copy_gbs * p)


def _hpcc(point: SimPoint):
    """Full HPCC suite at one configuration -> HPCCResult."""
    m = get_machine(point.machine)
    return run_hpcc(m, point.nprocs, scaled_config(point.nprocs))


def _imb(point: SimPoint):
    """One IMB benchmark measurement -> IMBResult."""
    m = get_machine(point.machine)
    return run_benchmark(
        m,
        point.param("benchmark"),
        point.nprocs,
        msg_bytes=point.param("msg_bytes", PAPER_MSG_BYTES),
    )


_COMPUTE = {
    "ring_hpl": _ring_hpl,
    "stream_hpl": _stream_hpl,
    "hpcc": _hpcc,
    "imb": _imb,
}


def compute_point(point: SimPoint) -> PointRecord:
    """Compute one simulation point; safe to call in any process."""
    try:
        fn = _COMPUTE[point.kind]
    except KeyError:
        raise ValueError(f"unknown simulation point kind {point.kind!r}") from None
    ev0 = EVENT_STATS["processed"]
    t0 = perf_counter()
    value = fn(point)
    wall = perf_counter() - t0
    return PointRecord(value=value, wall_s=wall,
                       events=EVENT_STATS["processed"] - ev0)
