"""Advisory file locks for the multi-tenant result store.

The content-addressed cache is shared by concurrent harness runs,
service worker threads, and fleet subprocesses.  Entry writes were
already atomic (tempfile + rename), but multi-tenant use adds two races
worth guarding: duplicate concurrent writes of the same entry (wasted
work and tempfile churn under load) and ``gc`` sweeping a generation
directory while a writer is mid-``mkstemp``.  :class:`FileLock` is a
small advisory lock used around those windows.

``fcntl.flock`` is the primary mechanism (POSIX; locks die with the
holder, so crashes can never wedge the store).  Where ``fcntl`` is
unavailable the fallback is an ``O_CREAT | O_EXCL`` lock file with
stale-lock stealing by age — weaker, but portable.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class LockTimeout(TimeoutError):
    """The lock could not be acquired within the timeout."""


class FileLock:
    """Advisory inter-process lock on ``path`` (a dedicated lock file).

    Usage::

        with FileLock(entry_path.with_suffix(".lock")):
            ...  # critical section

    Re-entrant use in one process is *not* supported — keep critical
    sections small instead.
    """

    def __init__(self, path: str | os.PathLike, *,
                 timeout: float = 30.0, poll_s: float = 0.01,
                 stale_after_s: float = 120.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_s = poll_s
        self.stale_after_s = stale_after_s
        self._fd: int | None = None

    # -- flock path ---------------------------------------------------------

    def _acquire_flock(self) -> None:
        deadline = time.monotonic() + self.timeout
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout}s") from None
                time.sleep(self.poll_s)

    def _release_flock(self) -> None:
        fd, self._fd = self._fd, None
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        # Best-effort cleanup; losing the race to a new locker is fine
        # because flock holds the *open file*, not the directory entry.
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- O_EXCL fallback ----------------------------------------------------

    def _acquire_excl(self) -> None:  # pragma: no cover - non-POSIX
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                                   0o644)
                return
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > self.stale_after_s:
                        self.path.unlink()
                        continue
                except OSError:
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout}s") from None
                time.sleep(self.poll_s)

    def _release_excl(self) -> None:  # pragma: no cover - non-POSIX
        fd, self._fd = self._fd, None
        os.close(fd)
        try:
            os.unlink(self.path)
        except OSError:
            pass

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._acquire_flock()
        else:  # pragma: no cover - non-POSIX
            self._acquire_excl()
        return self

    def __exit__(self, *exc) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            self._release_flock()
        else:  # pragma: no cover - non-POSIX
            self._release_excl()
