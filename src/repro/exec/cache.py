"""Content-addressed, on-disk cache of simulation-point results.

A cache entry's address is ``sha256(fingerprint + point.key())`` where the
fingerprint hashes the entire ``repro`` source tree.  Any source change —
a model constant, a collective algorithm, the engine itself — therefore
invalidates every entry automatically: stale results can never be served.

Entries are pickled :class:`~repro.exec.worker.PointRecord` objects stored
under ``.repro_cache/<2-hex>/<64-hex>.pkl`` (sharded to keep directories
small).  Writes are atomic (tempfile + rename) so concurrent harness runs
can share one cache directory safely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from pathlib import Path

from ..core import sched
from .points import SimPoint

#: Default cache location (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bump when the on-disk record layout changes incompatibly.
CACHE_FORMAT = 1

_fingerprint_memo: dict[str, str] = {}


def source_fingerprint(root: str | os.PathLike | None = None) -> str:
    """Hash of every ``*.py`` file under the ``repro`` package.

    The digest covers relative paths and file contents, so renames,
    edits, additions and deletions all change it.  Memoised per root —
    the tree is only read once per process.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    root = Path(root)
    memo_key = str(root)
    cached = _fingerprint_memo.get(memo_key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(f"format={CACHE_FORMAT}".encode())
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _fingerprint_memo[memo_key] = digest
    return digest


class ResultCache:
    """Content-addressed store mapping :class:`SimPoint` -> result record."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, point: SimPoint) -> Path:
        blob = self.fingerprint + "\n" + point.key()
        # Scheduler backends that can change results (the macro fast-path
        # above its rank threshold) salt the address so approximate and
        # exact results never alias.  Exact backends tag as None: heapq,
        # calendar, and macro-below-threshold all share entries.
        tag = sched.backend_result_tag()
        if tag is not None:
            blob += "\n" + tag
        digest = hashlib.sha256(blob.encode()).hexdigest()
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, point: SimPoint):
        """Return the cached record for ``point``, or ``None`` on a miss."""
        path = self._path(point)
        try:
            with path.open("rb") as fh:
                record = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, point: SimPoint, record) -> None:
        """Store ``record`` for ``point`` (atomic write)."""
        path = self._path(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self) -> None:
        """Delete the entire cache directory."""
        if self.root.exists():
            shutil.rmtree(self.root)

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache {self.root} hits={self.hits} "
                f"misses={self.misses}>")
