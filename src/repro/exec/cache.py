"""Content-addressed, multi-tenant on-disk store of simulation results.

A cache entry's address is ``sha256(fingerprint + point.key())`` where
the fingerprint hashes the entire ``repro`` source tree.  Any source
change — a model constant, a collective algorithm, the engine itself —
therefore invalidates every entry automatically: stale results can never
be served.

Entries are pickled :class:`~repro.exec.worker.PointRecord` objects
stored under ``.repro_cache/<fp-16-hex>/<2-hex>/<64-hex>.pkl``: the
first level is the *generation* directory (a prefix of the source
fingerprint), the rest shards entries to keep directories small.
Grouping a generation under one directory is what makes the store
multi-tenant-manageable: :meth:`ResultCache.gc` can sweep every stale
generation in one pass without touching the live one, even while other
tenants (concurrent harness runs, service worker threads, fleet
subprocesses) keep reading and writing.

Writes are atomic (tempfile + rename) and additionally guarded by a
per-entry advisory :class:`~repro.exec.locks.FileLock`, so concurrent
writers of the same entry serialise instead of duplicating work, and
``gc`` never sweeps a directory out from under a mid-flight write.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
from pathlib import Path

from ..config import DEFAULT_CACHE_DIR  # noqa: F401  (re-exported)
from ..core import sched
from .locks import FileLock, LockTimeout
from .points import SimPoint

#: Bump when the on-disk record layout changes incompatibly.
#: v2: entries live under per-generation (fingerprint-prefix)
#: directories so the store is GC-able per source generation.
CACHE_FORMAT = 2

#: Hex chars of the fingerprint naming a generation directory.
GENERATION_PREFIX = 16

_fingerprint_memo: dict[str, str] = {}


def source_fingerprint(root: str | os.PathLike | None = None) -> str:
    """Hash of every ``*.py`` file under the ``repro`` package.

    The digest covers relative paths and file contents, so renames,
    edits, additions and deletions all change it.  Memoised per root —
    the tree is only read once per process.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    root = Path(root)
    memo_key = str(root)
    cached = _fingerprint_memo.get(memo_key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(f"format={CACHE_FORMAT}".encode())
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _fingerprint_memo[memo_key] = digest
    return digest


class ResultCache:
    """Content-addressed store mapping :class:`SimPoint` -> result record."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 fingerprint: str | None = None) -> None:
        self.root = Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def generation_dir(self) -> Path:
        """This source generation's directory within the store."""
        return self.root / self.fingerprint[:GENERATION_PREFIX]

    def _path(self, point: SimPoint) -> Path:
        blob = self.fingerprint + "\n" + point.key()
        # Scheduler backends that can change results (the macro fast-path
        # above its rank threshold) salt the address so approximate and
        # exact results never alias.  Exact backends tag as None: heapq,
        # calendar, and macro-below-threshold all share entries.
        tag = sched.backend_result_tag()
        if tag is not None:
            blob += "\n" + tag
        digest = hashlib.sha256(blob.encode()).hexdigest()
        return self.generation_dir / digest[:2] / f"{digest}.pkl"

    def get(self, point: SimPoint):
        """Return the cached record for ``point``, or ``None`` on a miss."""
        path = self._path(point)
        try:
            with path.open("rb") as fh:
                record = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, point: SimPoint, record) -> None:
        """Store ``record`` for ``point`` (lock-guarded atomic write)."""
        path = self._path(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Overwrite unconditionally: an existing entry at this address is
        # either identical content (same address => same inputs) or a
        # pre-observability record being upgraded with comm/timeline data.
        try:
            with FileLock(path.with_suffix(".lock")):
                self._write(path, record)
        except LockTimeout:
            # A wedged/slow peer must not fail the sweep — fall back to
            # the plain atomic write (rename still guarantees integrity).
            self._write(path, record)
        self.stores += 1

    def _write(self, path: Path, record) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(record, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        """Delete the entire cache directory (every generation)."""
        if self.root.exists():
            shutil.rmtree(self.root)

    # -- multi-tenant maintenance ------------------------------------------

    def generations(self) -> list[str]:
        """Generation directory names currently present in the store."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and len(p.name) == GENERATION_PREFIX)

    def gc(self, *, keep_current: bool = True) -> dict:
        """Sweep stale generations; returns ``{removed, kept, bytes}``.

        A generation is stale when its directory name is not the current
        fingerprint prefix.  With ``keep_current=False`` the live
        generation is swept too (equivalent to :meth:`clear`, but
        per-generation and reported).
        """
        current = self.fingerprint[:GENERATION_PREFIX]
        removed, kept, freed = [], [], 0
        for name in self.generations():
            gen = self.root / name
            if keep_current and name == current:
                kept.append(name)
                continue
            freed += sum(f.stat().st_size for f in gen.rglob("*")
                         if f.is_file())
            shutil.rmtree(gen, ignore_errors=True)
            removed.append(name)
        return {"removed": removed, "kept": kept, "bytes": freed}

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResultCache {self.root} hits={self.hits} "
                f"misses={self.misses}>")
