"""Simulation points: the unit of work the sweep executor schedules.

A :class:`SimPoint` names one independent simulation — a (kind, machine,
rank-count, params) tuple.  Every figure and table of the paper decomposes
into a list of such points; because each point is a pure function of its
fields plus the source tree, points are both parallelisable (no shared
state) and cacheable (the key below, salted with a source fingerprint,
is content-addressed).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimPoint:
    """One independent simulation: kind + machine + rank count + params.

    ``params`` is a sorted tuple of (name, value) pairs so that equal
    parameter sets always produce equal points and a stable cache key.
    """

    kind: str
    machine: str
    nprocs: int
    params: tuple[tuple[str, object], ...] = field(default=())

    @classmethod
    def make(cls, kind: str, machine: str, nprocs: int, **params) -> "SimPoint":
        return cls(kind, machine, nprocs, tuple(sorted(params.items())))

    def param(self, name: str, default=None):
        for k, v in self.params:
            if k == name:
                return v
        return default

    def key(self) -> str:
        """Stable, human-readable identity string (cache-key material)."""
        ps = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}/{self.machine}/p{self.nprocs}/{ps}"

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.key()
