"""Unified run configuration: one resolver for flags, env vars, defaults.

Every entry point used to thread its own ad-hoc mix of CLI flags
(``--jobs``, ``--engine-backend``, ``--cache-dir``, ``--no-cache``) and
environment variables (``REPRO_JOBS``, ``REPRO_ENGINE_BACKEND``, ...)
with precedence decided differently per CLI.  :class:`ReproConfig`
collapses all of that into one frozen dataclass with a single resolution
rule, applied uniformly to every knob:

    explicit argument  >  environment variable  >  built-in default

:meth:`ReproConfig.from_env_and_args` is the only resolver; the harness
CLI, the validation CLI, the sweep service, and worker-process
initialisation all pass the resulting config explicitly instead of
re-reading ``os.environ`` at different times.

Environment variables:

=====================  =====================================================
``REPRO_JOBS``         worker processes for sweep fan-out (default: CPUs)
``REPRO_ENGINE_BACKEND``  event-queue scheduler (see :mod:`repro.core.sched`)
``REPRO_EXEC_BACKEND`` executor backend (see :mod:`repro.exec.backends`)
``REPRO_CACHE_DIR``    result-cache directory (default ``.repro_cache``)
``REPRO_NO_CACHE``     ``1`` disables the on-disk result cache
``REPRO_ENERGY``       ``1`` enables energy accounting (``--energy``)
``REPRO_TELEMETRY``    ``1`` enables service telemetry (``--telemetry``)
=====================  =====================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any

from .core import sched
from .core.errors import ConfigError

#: Environment variable naming the worker-process count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable naming the executor backend.
EXEC_BACKEND_ENV = "REPRO_EXEC_BACKEND"

#: Environment variable naming the result-cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the result cache (``1``/``true``).
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Environment variable enabling energy accounting (``1``/``true``).
ENERGY_ENV = "REPRO_ENERGY"

#: Environment variable enabling service telemetry (``1``/``true``).
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Default cache location (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else the host CPU count."""
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {env!r}"
            ) from None
    return os.cpu_count() or 1


def _env_str(name: str) -> str | None:
    raw = os.environ.get(name, "").strip()
    return raw or None


def _env_flag(name: str) -> bool | None:
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return None
    if raw in _TRUE:
        return True
    if raw in _FALSE:
        return False
    raise ConfigError(f"{name} must be a boolean flag "
                      f"(1/0/true/false), got {raw!r}")


@dataclass(frozen=True)
class ReproConfig:
    """Resolved, immutable run configuration.

    Construct via :meth:`from_env_and_args` (or :meth:`defaults` for the
    pure-default config) rather than by hand, so every field has been
    validated and the flag/env precedence is consistent.
    """

    #: Worker processes for sweep fan-out (>= 1).
    jobs: int
    #: Discrete-event scheduler backend name (:mod:`repro.core.sched`).
    engine_backend: str
    #: Executor backend name (:mod:`repro.exec.backends`).
    exec_backend: str
    #: On-disk result-cache directory.
    cache_dir: str = DEFAULT_CACHE_DIR
    #: Whether the on-disk result cache is used at all.
    cache: bool = True
    #: Whether energy accounting (:mod:`repro.obs.energy`) is recorded.
    energy: bool = False
    #: Whether service telemetry (:mod:`repro.obs.telemetry` traces plus
    #: :mod:`repro.service.health` events/exposition) is recorded.
    telemetry: bool = False

    # -- construction -------------------------------------------------------

    @classmethod
    def defaults(cls) -> "ReproConfig":
        """The all-defaults config (env vars still consulted)."""
        return cls.from_env_and_args()

    @classmethod
    def from_env_and_args(cls, args: Any = None, *,
                          jobs: int | None = None,
                          engine_backend: str | None = None,
                          exec_backend: str | None = None,
                          cache_dir: str | None = None,
                          no_cache: bool | None = None,
                          energy: bool | None = None,
                          telemetry: bool | None = None) -> "ReproConfig":
        """Resolve a config: explicit argument > env var > default.

        ``args`` may be an ``argparse.Namespace`` (or any object) whose
        ``jobs`` / ``engine_backend`` / ``exec_backend`` / ``cache_dir``
        / ``no_cache`` attributes supply the explicit layer; keyword
        arguments override even those.  ``None`` (and ``None``-defaulted
        CLI flags) mean "not given", falling through to the environment.

        Raises :class:`~repro.core.errors.ConfigError` for an unknown
        backend name and :class:`ValueError` for a malformed
        ``REPRO_JOBS`` so CLIs can fail with a usage error before any
        simulation starts.
        """
        def arg(name, explicit):
            if explicit is not None:
                return explicit
            return getattr(args, name, None) if args is not None else None

        r_jobs = arg("jobs", jobs)
        if r_jobs is None:
            r_jobs = default_jobs()
        r_jobs = max(1, int(r_jobs))

        r_engine = arg("engine_backend", engine_backend)
        if r_engine is None:
            r_engine = _env_str(sched.BACKEND_ENV) or sched.FALLBACK_BACKEND
        if r_engine not in sched.BACKENDS:
            raise ConfigError(
                f"unknown engine backend {r_engine!r} "
                f"(registered: {', '.join(sched.available_backends())})")

        r_exec = arg("exec_backend", exec_backend)
        if r_exec is None:
            r_exec = _env_str(EXEC_BACKEND_ENV)
        if r_exec is None:
            # The historical behaviour: serial runs compute in-process,
            # ``--jobs N`` fans out over a process pool.
            r_exec = "pool" if r_jobs > 1 else "inline"
        from .exec import backends as _eb  # deferred: avoids import cycle
        if r_exec not in _eb.EXEC_BACKENDS:
            raise ConfigError(
                f"unknown exec backend {r_exec!r} "
                f"(registered: {', '.join(_eb.available_exec_backends())})")

        r_cache_dir = arg("cache_dir", cache_dir)
        if r_cache_dir is None:
            r_cache_dir = _env_str(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR

        r_no_cache = arg("no_cache", no_cache)
        if r_no_cache is None:
            r_no_cache = _env_flag(NO_CACHE_ENV) or False

        r_energy = arg("energy", energy)
        if r_energy is None:
            r_energy = _env_flag(ENERGY_ENV) or False

        r_telemetry = arg("telemetry", telemetry)
        if r_telemetry is None:
            r_telemetry = _env_flag(TELEMETRY_ENV) or False

        return cls(jobs=r_jobs, engine_backend=r_engine, exec_backend=r_exec,
                   cache_dir=str(r_cache_dir), cache=not r_no_cache,
                   energy=bool(r_energy), telemetry=bool(r_telemetry))

    # -- derived objects ----------------------------------------------------

    def with_overrides(self, **changes) -> "ReproConfig":
        """A copy with ``changes`` applied (dataclass ``replace``)."""
        return replace(self, **changes)

    def apply_engine_backend(self) -> None:
        """Install :attr:`engine_backend` as the process-wide default."""
        sched.set_default_backend(self.engine_backend)

    def make_cache(self):
        """A :class:`~repro.exec.cache.ResultCache` per this config.

        Returns ``None`` when caching is disabled.
        """
        if not self.cache:
            return None
        from .exec.cache import ResultCache
        return ResultCache(self.cache_dir)

    def make_executor(self, coalescer=None):
        """A fully configured :class:`~repro.exec.SweepExecutor`."""
        from .exec.executor import SweepExecutor
        return SweepExecutor(jobs=self.jobs, cache=self.make_cache(),
                             backend=self.exec_backend, coalescer=coalescer)

    def to_dict(self) -> dict:
        """JSON-able snapshot (service status files, bench artifacts)."""
        return {
            "jobs": self.jobs,
            "engine_backend": self.engine_backend,
            "exec_backend": self.exec_backend,
            "cache_dir": self.cache_dir,
            "cache": self.cache,
            "energy": self.energy,
            "telemetry": self.telemetry,
        }
