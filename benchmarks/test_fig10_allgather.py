"""Figure 10: IMB Allgather at 1 MB vs CPU count.

Paper shape: NEC SX-8 much better than everything; Cray X1 (both modes)
slightly better than the scalar systems; NEC an order of magnitude ahead
of the X1; Altix and Xeon almost the same, ahead of the Opteron cluster.
"""

import pytest

from repro.harness import fig10
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig10(max_cpus=BENCH_MAX_CPUS)


def test_fig10_allgather_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig10(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    p = 8
    # NEC dominates: order of magnitude over the X1
    assert at("x1_msp", p) > 5 * at("sx8", p)
    # X1 better than the scalar systems
    scalars = [at(m, p) for m in ("altix_nl4", "xeon", "opteron")]
    assert at("x1_msp", p) < min(scalars)
    # Altix ~ Xeon tier; Opteron behind
    altix, xeon, opteron = scalars
    assert 1 / 4 < altix / xeon < 4
    assert opteron > max(altix, xeon)
