"""Figures 3-4: accumulated EP-STREAM Copy vs HPL, absolute and Byte/Flop.

Anchors (paper section 4.1.1): SX-8 consistently above 2.67 Byte/Flop,
Altix above 0.36, Opteron between 0.84 and 1.07; ratios improve slightly
with CPU count because HPL efficiency decreases.
"""

import pytest

from repro.harness import fig03, fig04
from benchmarks.conftest import HPCC_MAX_CPUS


@pytest.fixture(scope="module")
def figures():
    return fig03(max_cpus=HPCC_MAX_CPUS), fig04(max_cpus=HPCC_MAX_CPUS)


def test_fig03_accumulated_stream(benchmark, figures):
    f3, _ = figures
    benchmark.pedantic(lambda: fig03(max_cpus=16), rounds=1, iterations=1)
    # linear growth: doubling CPUs doubles accumulated bandwidth
    for s in f3.series:
        assert s.y[1] == pytest.approx(2 * s.y[0], rel=0.05)
    # absolute: SX-8's memory subsystem dwarfs everything (vector DDR-SDRAM
    # banks vs commodity buses)
    sx8 = f3.by_machine("sx8")
    xeon = f3.by_machine("xeon")
    assert sx8.y[0] / 4 > 10 * xeon.y[0] / 4


def test_fig04_byte_per_flop_anchors(benchmark, figures):
    _, f4 = figures
    benchmark.pedantic(lambda: fig04(max_cpus=16), rounds=1, iterations=1)

    sx8 = f4.by_machine("sx8").y
    assert all(v > 2.67 for v in sx8)          # paper: "consistently above"

    altix = f4.by_machine("altix_nl4").y
    assert all(v > 0.34 for v in altix)        # paper: "above 0.36"

    opteron = f4.by_machine("opteron").y
    assert all(0.8 < v < 1.25 for v in opteron)  # paper: 0.84..1.07

    # the Xeon cluster has the weakest memory balance of the five
    xeon = f4.by_machine("xeon").y
    assert max(xeon) < min(opteron)

    # vector/scalar separation is roughly an order of magnitude
    assert min(sx8) > 5 * max(altix)
