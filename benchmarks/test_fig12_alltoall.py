"""Figure 12: IMB Alltoall at 1 MB vs CPU count — the paper's network
stress test and the clearest machine separation:

    NEC SX-8 (IXS) > Cray X1 > SGI Altix BX2 (NUMALINK4)
        > Dell Xeon (InfiniBand) > Cray Opteron (Myrinet),

with the Altix ahead of the X1 up to 8 processors (8 CPUs share a
C-brick), and the Xeon and Opteron nearly identical up to 8 processors
before Myrinet falls behind.
"""

import pytest

from repro.harness import fig12
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig12(max_cpus=BENCH_MAX_CPUS)


def test_fig12_alltoall_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig12(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    # headline ordering at the largest size every platform can field
    p = 8
    assert (at("sx8", p) < at("x1_msp", p) < at("altix_nl4", p)
            < at("xeon", p) < at("opteron", p))

    # (Deviation noted in EXPERIMENTS.md: the paper has the Altix ahead
    # of the X1 below 8 CPUs; this model's X1 flat shared memory keeps it
    # ahead at those sizes.)

    # Xeon ~ Opteron up to 8 CPUs, then InfiniBand pulls ahead
    for q in (2, 4, 8):
        assert at("xeon", q) == pytest.approx(at("opteron", q), rel=1.0), q
    top = min(BENCH_MAX_CPUS, 64)
    assert at("xeon", top) < 0.7 * at("opteron", top)

    # growth is superlinear in CPU count (total volume ~ P^2)
    xs, ys = data["xeon"]
    assert ys[-1] / ys[0] > (xs[-1] / xs[0])
