"""Figure 6: IMB Barrier time vs CPU count.

Paper shape: every platform's barrier time grows with CPU count; for
fewer than 16 processors the SGI Altix BX2 is the fastest; the Cray X1
in MSP mode grows only slowly; the NEC SX-8 has the best time at the
largest CPU counts it can field next to the commodity clusters.
"""

import pytest

from repro.harness import fig06
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig06(max_cpus=BENCH_MAX_CPUS)


def test_fig06_barrier_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig06(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    # monotone growth with CPU count on every machine
    for machine, (xs, ys) in data.items():
        assert ys[-1] > ys[0], machine

    def at(machine, p):
        xs, ys = data[machine]
        usable = [i for i, x in enumerate(xs) if x <= p]
        return ys[usable[-1]]  # nearest measured count <= p

    # Altix fastest below 16 CPUs
    for p in (2, 4, 8):
        rivals = [at(m, p) for m in ("sx8", "xeon", "opteron")]
        assert at("altix_nl4", p) < min(rivals), p

    # X1 MSP mode grows notably more slowly than the commodity clusters
    def growth(machine):
        xs, ys = data[machine]
        return ys[-1] / ys[0]

    assert growth("x1_msp") < 0.5 * min(growth("xeon"), growth("opteron"))

    # at the largest common count the SX-8 has the best time of the
    # non-Altix systems ("NEC SX-8 has the best barrier time" at scale)
    top = min(BENCH_MAX_CPUS, 64)
    rivals = [at(m, top) for m in ("xeon", "opteron", "x1_ssp")]
    assert at("sx8", top) < min(rivals)
