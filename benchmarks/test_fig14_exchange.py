"""Figure 14: IMB Exchange bandwidth at 1 MB vs CPU count.

Paper shape reproduced: NEC SX-8 wins; the Opteron cluster is lowest
(its PCI-X bus is half-duplex, and Exchange is the most bidirectional
pattern); the Xeon curve is almost flat from small to large CPU counts.

Known deviation (EXPERIMENTS.md): the paper places the Xeon cluster
*second*, ahead of the Altix and X1; this model keeps the Altix/X1 ahead
of the Xeon — the IB-specific effect behind the paper's measurement is
not captured by the fabric parameters.
"""

import pytest

from repro.harness import fig13, fig14
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def figs():
    return fig13(max_cpus=BENCH_MAX_CPUS), fig14(max_cpus=BENCH_MAX_CPUS)


def test_fig14_exchange_shapes(benchmark, figs):
    f13, f14 = figs
    benchmark.pedantic(lambda: fig14(max_cpus=8), rounds=1, iterations=1)
    d13, d14 = series_map(f13), series_map(f14)

    def at(d, machine, p):
        xs, ys = d[machine]
        return ys[xs.index(float(p))]

    p = 16
    # NEC the winner; Opteron the loser
    others = [at(d14, m, p) for m in ("altix_nl4", "xeon", "opteron")]
    assert at(d14, "sx8", p) > max(others)
    assert min(others) == at(d14, "opteron", p)

    # the Xeon curve is almost constant across its whole range
    xs, ys = d14["xeon"]
    assert max(ys[1:]) < 2.5 * min(ys[1:])

    # the half-duplex Myrinet NIC loses *relative* ground going from
    # Sendrecv to the fully bidirectional Exchange, vs full-duplex IB
    xeon_ratio = at(d14, "xeon", p) / at(d13, "xeon", p)
    opt_ratio = at(d14, "opteron", p) / at(d13, "opteron", p)
    assert xeon_ratio > opt_ratio
