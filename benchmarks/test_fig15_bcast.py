"""Figure 15: IMB Broadcast at 1 MB vs CPU count.

Paper shape: broadcast time increases gradually with CPU count on every
platform; best systems in decreasing order are NEC SX-8, SGI Altix BX2,
Cray X1, Xeon Cluster, Cray Opteron Cluster; the SX-8's broadcast
bandwidth is more than an order of magnitude above the commodity
clusters.
"""

import pytest

from repro.harness import fig15
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig15(max_cpus=BENCH_MAX_CPUS)


def test_fig15_bcast_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig15(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    p = 8
    # decreasing order: NEC, BX2, X1, Xeon, Opteron
    assert at("sx8", p) < at("altix_nl4", p)
    assert at("altix_nl4", p) < at("xeon", p) < at("opteron", p)
    assert at("x1_msp", p) < at("xeon", p)

    # ~order-of-magnitude SX-8 lead over the commodity clusters
    # (paper: "more than an order of magnitude"; we measure ~8x against
    # the Xeon and >25x against the Opteron)
    assert at("xeon", p) > 7 * at("sx8", p)
    assert at("opteron", p) > 20 * at("sx8", p)

    # gradual growth with CPU count everywhere
    for machine, (xs, ys) in data.items():
        assert ys[-1] > ys[0], machine
