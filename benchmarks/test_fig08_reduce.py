"""Figure 8: IMB Reduce at 1 MB vs CPU count.

Paper shape: two clear-cut clusters by architecture — the vector systems
(NEC SX-8, Cray X1) an order of magnitude better than the cache-based
scalar systems; NEC better than X1; Altix and Xeon close to each other
and both ahead of the Opteron cluster.
"""

import pytest

from repro.harness import fig08
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig08(max_cpus=BENCH_MAX_CPUS)


def test_fig08_reduce_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig08(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    p = 8
    # vector/scalar clustering, order of magnitude for the SX-8
    fastest_scalar = min(at(m, p) for m in ("altix_nl4", "xeon", "opteron"))
    assert fastest_scalar > 10 * at("sx8", p)
    assert fastest_scalar > 2.5 * at("x1_msp", p)
    # NEC better than X1
    assert at("sx8", p) < at("x1_msp", p)
    # Altix and Xeon in the same tier (within ~3x), both ahead of Opteron
    altix, xeon, opteron = (at(m, p) for m in
                            ("altix_nl4", "xeon", "opteron"))
    assert 1 / 3 < altix / xeon < 3
    assert opteron > max(altix, xeon)
