"""Ablation: collective algorithm choice.

Quantifies why the MPICH-style tuning rules exist — "reductions
benchmarks measure the message passing tests as well as efficiency of
the algorithms used underneath" (paper §3.2.3).  Each case compares two
implementations of the same collective on the same machine and asserts
the tuned default picks the winner in its regime.
"""

import pytest

from repro import Cluster, get_machine
from benchmarks.conftest import BENCH_MAX_CPUS

MB = 1024 * 1024
P = min(BENCH_MAX_CPUS, 32)


def timed(machine_name, prog):
    cluster = Cluster(get_machine(machine_name), P)

    def driver(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from prog(comm)
        return comm.now - t0

    return max(cluster.run(driver).results) * 1e6


def test_bcast_large_scatter_ring_beats_binomial(benchmark):
    def scatter_ring(comm):
        yield from comm.bcast(nbytes=MB, algorithm="scatter_ring")

    def binomial(comm):
        yield from comm.bcast(nbytes=MB, algorithm="binomial")

    t_sr = benchmark.pedantic(lambda: timed("xeon", scatter_ring),
                              rounds=1, iterations=1)
    t_bin = timed("xeon", binomial)
    # van de Geijn avoids the log(P) full-payload critical path
    assert t_sr < t_bin
    # and the tuned default picks it at 1 MB
    def tuned(comm):
        yield from comm.bcast(nbytes=MB)
    assert timed("xeon", tuned) == pytest.approx(t_sr, rel=0.05)


def test_bcast_small_binomial_beats_scatter_ring(benchmark):
    def scatter_ring(comm):
        yield from comm.bcast(nbytes=256, algorithm="scatter_ring")

    def binomial(comm):
        yield from comm.bcast(nbytes=256, algorithm="binomial")

    t_bin = benchmark.pedantic(lambda: timed("xeon", binomial),
                               rounds=1, iterations=1)
    t_sr = timed("xeon", scatter_ring)
    # P-1 latency-bound ring steps lose badly at small sizes
    assert t_bin < t_sr


def test_allreduce_large_rabenseifner_beats_recursive_doubling(benchmark):
    def rab(comm):
        yield from comm.allreduce(nbytes=MB, algorithm="rabenseifner")

    def rd(comm):
        yield from comm.allreduce(nbytes=MB, algorithm="recursive_doubling")

    t_rab = benchmark.pedantic(lambda: timed("opteron", rab),
                               rounds=1, iterations=1)
    t_rd = timed("opteron", rd)
    # recursive doubling moves log(P) full payloads; Rabenseifner ~2
    assert t_rab < 0.7 * t_rd


def test_allreduce_small_recursive_doubling_beats_rabenseifner(benchmark):
    def rab(comm):
        yield from comm.allreduce(nbytes=64, algorithm="rabenseifner")

    def rd(comm):
        yield from comm.allreduce(nbytes=64, algorithm="recursive_doubling")

    t_rd = benchmark.pedantic(lambda: timed("opteron", rd),
                              rounds=1, iterations=1)
    t_rab = timed("opteron", rab)
    assert t_rd < t_rab


def test_alltoall_small_bruck_beats_pairwise(benchmark):
    def bruck(comm):
        yield from comm.alltoall(nbytes=8, algorithm="bruck")

    def pairwise(comm):
        yield from comm.alltoall(nbytes=8, algorithm="pairwise")

    t_bruck = benchmark.pedantic(lambda: timed("opteron", bruck),
                                 rounds=1, iterations=1)
    t_pw = timed("opteron", pairwise)
    # log(P) rounds vs P-1 rounds on a ~10 us network
    assert t_bruck < t_pw


def test_alltoall_large_pairwise_beats_bruck(benchmark):
    def bruck(comm):
        yield from comm.alltoall(nbytes=MB, algorithm="bruck")

    def pairwise(comm):
        yield from comm.alltoall(nbytes=MB, algorithm="pairwise")

    t_pw = benchmark.pedantic(lambda: timed("sx8", pairwise),
                              rounds=1, iterations=1)
    t_bruck = timed("sx8", bruck)
    # bruck inflates volume by ~log(P)/2
    assert t_pw < t_bruck


def test_barrier_dissemination_beats_tree(benchmark):
    def diss(comm):
        yield from comm.barrier(algorithm="dissemination")

    def tree(comm):
        yield from comm.barrier(algorithm="tree")

    t_diss = benchmark.pedantic(lambda: timed("xeon", diss),
                                rounds=1, iterations=1)
    t_tree = timed("xeon", tree)
    # gather+release doubles the tree depth
    assert t_diss < t_tree
