"""Tables 1 and 2: static configuration tables (exact content checks)."""

from repro.harness import render_table, table1, table2


def test_table1_architecture_parameters(benchmark):
    t = benchmark.pedantic(table1, rounds=1, iterations=1)
    rows = dict(t.rows)
    # Exact values from the paper's Table 1.
    assert rows == {
        "Clock (GHz)": 1.6,
        "C-Bricks": 64,
        "IX-Bricks": 4,
        "Routers": 128,
        "Meta Routers": 48,
        "CPUs": 512,
        "L3-cache (MB)": 9,
        "Memory (Tb)": 1,
        "R-bricks": 48,
    }


def test_table2_system_characteristics(benchmark):
    t = benchmark.pedantic(table2, rounds=1, iterations=1)
    by_name = {r[0]: r for r in t.rows}
    # (type, cpus/node, clock, peak/node, network, topology)
    expectations = {
        "SGI Altix BX2 (NUMALINK4)":
            ("Scalar", 2, 1.6, 12.8, "NUMALINK4", "Fat-tree"),
        "Cray X1 (MSP)":
            ("Vector", 4, 0.8, 51.2, "Cray X1 network", "4D-hypercube"),
        "Cray Opteron Cluster":
            ("Scalar", 2, 2.0, 8.0, "Myrinet (PCI-X)", "Flat-tree"),
        "Dell Xeon Cluster":
            ("Scalar", 2, 3.6, 14.4, "InfiniBand", "Flat-tree"),
        "NEC SX-8":
            ("Vector", 8, 2.0, 128.0, "IXS", "Multi-stage Crossbar"),
    }
    for name, (typ, cpn, clock, peak, net, topo) in expectations.items():
        row = by_name[name]
        assert row[1] == typ and row[2] == cpn
        assert row[3] == clock and row[4] == peak
        assert row[5] == net and row[6] == topo
    assert "NEC SX-8" in render_table(t)
