"""Ablation: interconnect topology and blocking effects.

Isolates the structural choices DESIGN.md calls out: fat-tree blocking
factors (the Altix inter-box collapse, the Opteron leaf-switch cliff),
NIC duplex capability (Myrinet PCI-X), and topology family, holding all
other machine parameters fixed.
"""

import dataclasses

import pytest

from repro import Cluster
from repro.hpcc import RingConfig, run_ring
from repro.imb import run_benchmark
from tests.conftest import make_test_machine

MB = 1024 * 1024


def fattree_machine(blocking: float, leaf: int = 8):
    return make_test_machine(
        topology_kind="fattree",
        max_cpus=128,
        group_sizes=(leaf, 16),
        level_blocking=(1.0, blocking),
    )


def test_core_blocking_cuts_ring_bandwidth(benchmark):
    def run():
        out = {}
        for blocking in (1.0, 4.0, 16.0):
            m = fattree_machine(blocking)
            out[blocking] = run_ring(m, 64, RingConfig(n_rings=3)).bandwidth_gbs
        return out

    bw = benchmark.pedantic(run, rounds=1, iterations=1)
    # monotone degradation with oversubscription
    assert bw[1.0] >= bw[4.0] >= bw[16.0]
    assert bw[1.0] > 1.8 * bw[16.0]


def test_blocking_invisible_inside_one_leaf_switch(benchmark):
    """Traffic confined to a leaf switch never touches the blocked core:
    the Opteron cliff appears exactly when the job outgrows one switch."""
    def run():
        m_open = fattree_machine(1.0)
        m_blocked = fattree_machine(16.0)
        inside = (run_ring(m_blocked, 16, RingConfig(n_rings=3)).bandwidth_gbs,
                  run_ring(m_open, 16, RingConfig(n_rings=3)).bandwidth_gbs)
        outside = (run_ring(m_blocked, 64, RingConfig(n_rings=3)).bandwidth_gbs,
                   run_ring(m_open, 64, RingConfig(n_rings=3)).bandwidth_gbs)
        return inside, outside

    (in_b, in_o), (out_b, out_o) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    assert in_b == pytest.approx(in_o, rel=0.02)   # one switch: no effect
    assert out_b < 0.8 * out_o                     # two+ switches: cliff


def test_half_duplex_nic_hurts_bidirectional_patterns(benchmark):
    def run():
        full = make_test_machine(duplex_factor=2.0)
        half = make_test_machine(duplex_factor=1.0)
        out = {}
        for name, m in (("full", full), ("half", half)):
            out[name] = {
                "exchange": run_benchmark(m, "Exchange", 16, MB).time_us,
                "bcast": run_benchmark(m, "Bcast", 16, MB).time_us,
            }
        return out

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    # Exchange (fully bidirectional) suffers ~2x; one-directional flows
    # in the bcast pipeline suffer much less
    ex_penalty = t["half"]["exchange"] / t["full"]["exchange"]
    bc_penalty = t["half"]["bcast"] / t["full"]["bcast"]
    assert ex_penalty > 1.5
    assert bc_penalty < ex_penalty


def test_topology_family_alltoall(benchmark):
    """Same link speeds, different wiring: the non-blocking crossbar and
    hypercube sustain alltoall that a 4:1-blocked tree cannot."""
    def run():
        xbar = make_test_machine(topology_kind="crossbar", max_cpus=128)
        cube = make_test_machine(topology_kind="hypercube", max_cpus=128)
        tree = fattree_machine(4.0)
        return {
            "crossbar": run_benchmark(xbar, "Alltoall", 64, 65536).time_us,
            "hypercube": run_benchmark(cube, "Alltoall", 64, 65536).time_us,
            "blocked_tree": run_benchmark(tree, "Alltoall", 64, 65536).time_us,
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t["blocked_tree"] > 1.3 * t["crossbar"]
    assert t["blocked_tree"] > 1.3 * t["hypercube"]
    # hypercube pays extra hop latency but keeps full bisection
    assert t["hypercube"] == pytest.approx(t["crossbar"], rel=0.5)
