"""Figures 1-2: accumulated random-ring bandwidth vs HPL, absolute and
as a B/KFlop ratio.

Paper anchors reproduced here: NL4 ~203 B/KFlop in one box (vs NL3 ~94,
a ~2.2x NUMALINK4 advantage), SX-8 flat near 60, Opteron ~24 at 64 CPUs
with a steep 32->64 collapse; with a full-scale run (REPRO_BENCH_HPCC_
MAX_CPUS >= 2024) the Altix inter-box collapse to ~23 and the SX-8
crossover are asserted too.
"""

import pytest

from repro.harness import fig01, fig02
from benchmarks.conftest import HPCC_MAX_CPUS, y_at_cpus


@pytest.fixture(scope="module")
def figures():
    f1 = fig01(max_cpus=HPCC_MAX_CPUS)
    f2 = fig02(max_cpus=HPCC_MAX_CPUS)
    return f1, f2


def test_fig01_accumulated_bandwidth(benchmark, figures):
    f1, _ = figures
    benchmark.pedantic(lambda: fig01(max_cpus=16), rounds=1, iterations=1)
    # accumulated bandwidth grows with system size on every machine once
    # the run spans multiple nodes (the first points on fat-node systems
    # are intra-node-inflated, as in the paper's leftmost samples)
    for s in f1.series:
        assert s.y[-1] > s.y[2]
    # at comparable HPL the NL4 Altix carries more ring traffic than NL3
    nl4 = y_at_cpus(f1, "altix_nl4", 64)
    nl3 = y_at_cpus(f1, "altix_nl3", 64)
    assert nl4 > 1.5 * nl3


def test_fig02_ratio_anchors(benchmark, figures):
    _, f2 = figures
    benchmark.pedantic(lambda: fig02(max_cpus=16), rounds=1, iterations=1)

    # SGI Altix NL4 in-box plateau ~203 B/KFlop (paper: 203.12)
    nl4_64 = y_at_cpus(f2, "altix_nl4", 64)
    assert nl4_64 == pytest.approx(203.0, rel=0.2)
    # NL3 plateau ~94 (paper: 93.81)
    nl3_64 = y_at_cpus(f2, "altix_nl3", 64)
    assert nl3_64 == pytest.approx(94.0, rel=0.2)
    # NUMALINK4 improves on NUMALINK3 by about 2x in ratio terms
    assert 1.5 < nl4_64 / nl3_64 < 3.5

    # NEC SX-8: flat and near 60 B/KFlop from 64 CPUs up (paper: 59.64)
    sx8_counts = f2.extra["cpu_counts"]["sx8"]
    sx8 = f2.by_machine("sx8")
    plateau = [y for c, y in zip(sx8_counts, sx8.y) if c >= 64]
    assert min(plateau) == pytest.approx(max(plateau), rel=0.25)
    assert plateau[-1] == pytest.approx(60.0, rel=0.35)

    # Cray Opteron: ~24 B/KFlop at 64 CPUs after a steep 32->64 drop
    opt_64 = y_at_cpus(f2, "opteron", 64)
    opt_32 = y_at_cpus(f2, "opteron", 32)
    assert opt_64 == pytest.approx(24.4, rel=0.35)
    assert opt_32 > 1.25 * opt_64

    # ordering at 64 CPUs: NL4 > NL3 > SX-8 > Opteron (paper Fig 2)
    sx8_64 = y_at_cpus(f2, "sx8", 64)
    assert nl4_64 > nl3_64 > sx8_64 > opt_64


@pytest.mark.skipif(HPCC_MAX_CPUS < 2024,
                    reason="full-scale sweep disabled (set "
                           "REPRO_BENCH_HPCC_MAX_CPUS=2024)")
def test_fig02_interbox_collapse_full_scale(benchmark, figures):
    _, f2 = figures
    benchmark.pedantic(lambda: f2, rounds=1, iterations=1)
    # beyond one 512-CPU box the ratio collapses to ~23 (paper: 23.18)
    top = y_at_cpus(f2, "altix_nl4", 2024)
    assert top == pytest.approx(23.2, rel=0.35)
    # crossover: the SX-8 curve ends ABOVE the multi-box Altix
    sx8_tail = f2.by_machine("sx8").y[-1]
    assert sx8_tail > top
