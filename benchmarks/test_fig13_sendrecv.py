"""Figure 13: IMB Sendrecv bandwidth at 1 MB vs CPU count.

Paper shape: NEC SX-8 clearly best, SGI Altix BX2 second; Xeon and
Opteron in the same tier; every system peaks at 2 processors (shared
memory) and flattens beyond ~16; anchors: 47.4 GB/s for an SX-8 pair,
7.6 GB/s for an X1 SSP pair.
"""

import pytest

from repro.harness import fig13
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig13(max_cpus=BENCH_MAX_CPUS)


def test_fig13_sendrecv_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig13(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    # anchors at 2 processors (both intra-node)
    assert at("sx8", 2) / 1024 == pytest.approx(47.4, rel=0.15)
    assert at("x1_ssp", 2) / 1024 == pytest.approx(7.6, rel=0.15)

    # 2-CPU shared memory is every system's best point
    for machine, (xs, ys) in data.items():
        assert ys[0] >= 0.99 * max(ys), machine

    # steady-state ordering: NEC > Altix > {Xeon ~ Opteron}
    p = 16
    assert at("sx8", p) > at("altix_nl4", p)
    assert at("altix_nl4", p) > max(at("xeon", p), at("opteron", p))
    assert 0.2 < at("xeon", p) / at("opteron", p) < 5.0

    # beyond 16 CPUs the curves are flat ("becomes almost constant")
    for machine in ("xeon", "opteron", "altix_nl4"):
        xs, ys = data[machine]
        tail = [y for x, y in zip(xs, ys) if x >= 16]
        if len(tail) >= 2:
            assert max(tail) < 2.0 * min(tail), machine
