"""Ablation: closed-form (macro) collective models vs message-level DES.

DESIGN.md licenses the macro models for the 500-2000 CPU sweeps on the
grounds that they agree with the algorithmic simulation at tractable
scale.  This bench quantifies the deviation across machines, collectives
and sizes, and asserts the quality bar the harness relies on.
"""

import pytest

from repro import get_machine
from repro.imb import run_benchmark
from repro.network import macro
from repro.network.macro import MacroContext
from benchmarks.conftest import BENCH_MAX_CPUS

MB = 1024 * 1024
P = min(BENCH_MAX_CPUS, 32)

CASES = [
    ("Alltoall", macro.alltoall_time, MB),
    ("Allreduce", macro.allreduce_rabenseifner_time, MB),
    ("Allgather", macro.allgather_ring_time, MB),
    ("Bcast", macro.bcast_scatter_ring_time, MB),
]


def deviations():
    out = {}
    for machine_name in ("sx8", "altix_nl4", "xeon", "opteron"):
        m = get_machine(machine_name)
        ctx = MacroContext.from_machine(m, P)
        for bench, fn, nbytes in CASES:
            alg = run_benchmark(m, bench, P, nbytes).time_us
            mac = fn(ctx, nbytes) * 1e6
            out[(machine_name, bench)] = mac / alg
    return out


def test_macro_within_tolerance_everywhere(benchmark):
    ratios = benchmark.pedantic(deviations, rounds=1, iterations=1)
    for key, r in ratios.items():
        assert 0.45 < r < 2.2, (key, r)
    # aggregate bias stays small: geometric mean within 40%
    import math
    gmean = math.exp(sum(math.log(r) for r in ratios.values())
                     / len(ratios))
    assert 0.6 < gmean < 1.6


def test_macro_barrier_scaling_structure(benchmark):
    """Macro barrier grows like log2(P), matching dissemination."""
    m = get_machine("xeon")

    def run():
        return [macro.barrier_dissemination_time(
            MacroContext.from_machine(m, p)) for p in (8, 64, 512)]

    t8, t64, t512 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t64 == pytest.approx(2 * t8, rel=0.3)    # 6 rounds vs 3
    assert t512 == pytest.approx(3 * t8, rel=0.3)   # 9 rounds vs 3


def test_macro_speed_advantage(benchmark):
    """The whole point: macro costs microseconds where the DES costs
    seconds, enabling the 2024-CPU sweeps."""
    import time

    m = get_machine("xeon")

    def macro_eval():
        ctx = MacroContext.from_machine(m, 512)
        return macro.alltoall_time(ctx, MB)

    t0 = time.perf_counter()
    macro_eval()
    macro_host = time.perf_counter() - t0
    benchmark.pedantic(macro_eval, rounds=3, iterations=1)
    assert macro_host < 1.0  # vs tens of seconds for a 512-rank DES run
