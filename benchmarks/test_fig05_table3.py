"""Figure 5 + Table 3: the HPL-normalised comparison of all benchmarks.

Shape checks against the paper's Table 3 and §4.1.2 commentary:
the Opteron leads EP-DGEMM/HPL (low HPL efficiency), the SX-8 leads the
memory/network-heavy global ratios (PTRANS, FFTE, STREAM), the Altix
leads ring latency, and each column's normalised winner scores 1.0.
"""

import pytest

from repro.analysis.ratios import best_machine
from repro.harness import fig05
from repro.harness.tables import table3
from benchmarks.conftest import BENCH_MAX_CPUS

# Fig 5 needs the flagship configurations to be meaningful; cap only if
# the user explicitly restricts very hard.
CAP = None if BENCH_MAX_CPUS >= 64 else BENCH_MAX_CPUS


@pytest.fixture(scope="module")
def kiviat():
    return fig05(max_cpus=CAP)


def test_fig05_normalised_columns(benchmark, kiviat):
    fig, data = kiviat
    benchmark.pedantic(lambda: table3(max_cpus=CAP), rounds=1, iterations=1)

    # every column's best system is exactly 1.0 after normalisation
    for col in data.columns:
        vals = [row[col] for row in data.normalised.values()
                if row[col] is not None]
        assert max(vals) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 + 1e-12 for v in vals)

    # column winners, as the paper narrates them
    assert best_machine(data, "G-HPL") == "sx8"
    assert best_machine(data, "G-EP DGEMM/G-HPL") == "opteron"
    assert best_machine(data, "G-StreamCopy/G-HPL") == "sx8"
    assert best_machine(data, "G-Ptrans/G-HPL") == "sx8"
    assert best_machine(data, "G-FFTE/G-HPL") == "sx8"
    # ring latency: an Altix configuration leads (paper: NUMALINK)
    assert best_machine(data, "1/RandRingLatency").startswith("altix")


def test_table3_maxima_vs_paper(benchmark, kiviat):
    _, data = kiviat
    benchmark.pedantic(lambda: data, rounds=1, iterations=1)
    m = data.maxima
    paper = {
        "G-HPL": 8.729,
        "G-EP DGEMM/G-HPL": 1.925,
        "G-FFTE/G-HPL": 0.020,
        "G-Ptrans/G-HPL": 0.039,
        "G-StreamCopy/G-HPL": 2.893,
        "RandRingBW/PP-HPL": 0.094,
        "1/RandRingLatency": 0.197,
        "G-RandomAccess/G-HPL": 4.9e-5,
    }
    # shape reproduction: every maximum within ~2x of the paper's value
    for col, target in paper.items():
        assert target / 2.1 < m[col] < target * 2.1, (col, m[col], target)
    # two tight anchors: G-HPL and the SX-8 stream balance
    assert m["G-HPL"] == pytest.approx(8.729, rel=0.02)
    assert m["G-StreamCopy/G-HPL"] == pytest.approx(2.893, rel=0.1)


def test_fig05_vector_machines_weak_at_randomaccess(benchmark, kiviat):
    _, data = kiviat
    benchmark.pedantic(lambda: data, rounds=1, iterations=1)
    ra = {m: row["G-RandomAccess/G-HPL"]
          for m, row in data.normalised.items()
          if row["G-RandomAccess/G-HPL"] is not None}
    # the SX-8 sits at the bottom of the RandomAccess column (paper 4.1.2)
    assert ra["sx8"] == min(ra.values())
