"""Figure 7: IMB Allreduce at 1 MB vs CPU count.

Paper shape: both vector systems clearly win, NEC SX-8 ahead of the
Cray X1; the Cray Opteron Cluster (Myrinet) is worst; all platforms'
times grow with CPU count; more than an order of magnitude separates the
fastest and slowest platforms.
"""

import pytest

from repro.harness import fig07
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def fig():
    return fig07(max_cpus=BENCH_MAX_CPUS)


def test_fig07_allreduce_shapes(benchmark, fig):
    benchmark.pedantic(lambda: fig07(max_cpus=8), rounds=1, iterations=1)
    data = series_map(fig)

    def at(machine, p):
        xs, ys = data[machine]
        return ys[xs.index(float(p))]

    p = 8  # common to every platform including the 12-MSP X1
    scalars = [at(m, p) for m in ("altix_nl4", "xeon", "opteron")]
    # vector systems are clearly the winners
    assert at("sx8", p) < min(scalars)
    assert at("x1_msp", p) < min(scalars)
    # NEC superior to the X1 in both modes
    assert at("sx8", p) < at("x1_msp", p)
    assert at("sx8", p) < at("x1_ssp", p)
    # worst: the Opteron/Myrinet cluster
    assert max(scalars) == at("opteron", p)
    # "more than one order of magnitude" fastest to slowest
    assert at("opteron", p) > 10 * at("sx8", p)

    # all machines grow with CPU count
    for machine, (xs, ys) in data.items():
        assert ys[-1] > ys[0], machine
