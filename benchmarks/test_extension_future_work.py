"""Benches for the paper's future-work extensions (§5.2), implemented.

Covers the three announced campaigns: message-size sweeps (1 B-2 MB),
one-sided GET/PUT, and the five additional architectures — plus b_eff,
the effective-bandwidth benchmark two of the paper's authors maintain.
"""

import pytest

from repro import get_machine
from repro.harness.extended import (
    message_size_sweep,
    onesided_comparison,
    sequel_study,
)
from repro.hpcc.beff import BeffConfig, run_beff

MB = 1024 * 1024


def test_size_sweep_latency_floor_and_saturation(benchmark):
    """The sweep shows both regimes the paper says single numbers hide:
    a latency floor at 1 B and bandwidth saturation by 2 MB."""
    def run():
        return {
            name: message_size_sweep(get_machine(name), "PingPong", 2,
                                     sizes=[1, 1024, 2 * MB, 4 * MB])
            for name in ("sx8", "xeon", "opteron")
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, pts in sweeps.items():
        times = [t for (_s, t, _bw) in pts]
        bws = [bw for (_s, _t, bw) in pts]
        assert times == sorted(times), name
        # latency floor: 1 B and 1 KiB within 2x of each other
        assert times[1] < 2 * times[0], name
        # saturation: the last doubling gains < 35% bandwidth
        assert bws[-1] < 1.35 * bws[-2], name


def test_size_sweep_vector_crossover(benchmark):
    """At 1 B the low-latency Altix beats the SX-8 on Allreduce; by 2 MB
    the SX-8's bandwidth dominates — the crossover the future-work sweep
    was meant to chart."""
    def run():
        out = {}
        for name in ("sx8", "altix_nl4"):
            out[name] = dict(
                (s, t) for (s, t, _bw) in message_size_sweep(
                    get_machine(name), "Allreduce", 8, sizes=[1, 2 * MB])
            )
        return out

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t["altix_nl4"][1] < t["sx8"][1]            # latency regime
    assert t["sx8"][2 * MB] < t["altix_nl4"][2 * MB]  # bandwidth regime


def test_onesided_put_matches_two_sided_on_rdma(benchmark):
    out = benchmark.pedantic(lambda: onesided_comparison(nprocs=4),
                             rounds=1, iterations=1)
    # on InfiniBand the RDMA put rides the same wire as the send
    xeon = out["xeon"]
    assert xeon["Unidir_Put"] == pytest.approx(xeon["PingPong"], rel=0.6)
    # gets pay an extra request latency
    for row in out.values():
        assert row["Unidir_Get"] >= row["Unidir_Put"] * 0.9


def test_sequel_machines_balance(benchmark):
    rows = benchmark.pedantic(lambda: sequel_study(nprocs=64),
                              rounds=1, iterations=1)
    by = {r["machine"]: r for r in rows}
    # the XT4 was Cray's answer to exactly the Myrinet-cluster weakness
    # the paper measured: its balance must crush the GigE baseline and
    # clear the 2005 Opteron cluster's ~25 B/KFlop
    assert by["cray_xt4"]["b_per_kflop"] > 4 * by["gige"]["b_per_kflop"]
    assert by["cray_xt4"]["b_per_kflop"] > 25
    # the X1E keeps vector-class HPL efficiency
    assert by["cray_x1e"]["hpl_efficiency"] > 0.85


def test_beff_effective_bandwidth(benchmark):
    """b_eff (paper ref [14]): the log-size average is latency-weighted,
    so the Altix leads despite the SX-8 owning the bandwidth charts."""
    cfg = BeffConfig(l_max=1 << 18, n_sizes=11, n_random_rings=2)

    def run():
        return {name: run_beff(get_machine(name), 16, cfg).beff_mbs
                for name in ("sx8", "altix_nl4", "xeon", "opteron")}

    vals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert vals["altix_nl4"] > vals["sx8"] > vals["xeon"] > vals["opteron"]
