"""Figure 11: IMB Allgatherv at 1 MB vs CPU count.

Paper shape: "the performance results are similar to the results of the
(symmetric) Allgather"; the vector variant's bookkeeping adds no real
cost; NEC is almost an order of magnitude better than the X1; the SX-8
curve changes regime between 8 and 16 CPUs (single node -> multi node).
"""

import pytest

from repro.harness import fig10, fig11
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def figs():
    return fig10(max_cpus=BENCH_MAX_CPUS), fig11(max_cpus=BENCH_MAX_CPUS)


def test_fig11_allgatherv_shapes(benchmark, figs):
    f10, f11 = figs
    benchmark.pedantic(lambda: fig11(max_cpus=8), rounds=1, iterations=1)
    d10, d11 = series_map(f10), series_map(f11)

    # Allgatherv tracks Allgather point-for-point on every machine
    for machine in d11:
        xs10, ys10 = d10[machine]
        xs11, ys11 = d11[machine]
        assert xs10 == xs11
        for a, v in zip(ys10, ys11):
            assert v == pytest.approx(a, rel=0.15), machine

    def at(machine, p):
        xs, ys = d11[machine]
        return ys[xs.index(float(p))]

    # NEC ~ order of magnitude better than the X1
    assert at("x1_msp", 8) > 5 * at("sx8", 8)

    # SX-8 regime change when leaving the single 8-CPU node: the per-CPU
    # growth from 8->16 far exceeds the in-node growth from 4->8
    g_in = at("sx8", 8) / at("sx8", 4)
    g_out = at("sx8", 16) / at("sx8", 8)
    assert g_out > 1.5 * g_in
