"""Benchmark package: one pytest-benchmark module per paper table/figure."""
