"""Figure 9: IMB Reduce_scatter at 1 MB vs CPU count.

Paper shape: like Reduce, but the X1's advantage over the scalar systems
is much smaller; the NEC SX-8 slows at large CPU counts yet stays best;
the scalar systems are an order of magnitude behind the SX-8.
"""

import pytest

from repro.harness import fig08, fig09
from benchmarks.conftest import BENCH_MAX_CPUS, series_map


@pytest.fixture(scope="module")
def figs():
    return fig08(max_cpus=BENCH_MAX_CPUS), fig09(max_cpus=BENCH_MAX_CPUS)


def test_fig09_reduce_scatter_shapes(benchmark, figs):
    f8, f9 = figs
    benchmark.pedantic(lambda: fig09(max_cpus=8), rounds=1, iterations=1)
    d8, d9 = series_map(f8), series_map(f9)

    def at(d, machine, p):
        xs, ys = d[machine]
        return ys[xs.index(float(p))]

    p = 8
    # SX-8 best; scalars an order of magnitude slower
    assert at(d9, "sx8", p) < at(d9, "x1_msp", p)
    for m in ("altix_nl4", "xeon", "opteron"):
        assert at(d9, m, p) > 8 * at(d9, "sx8", p), m

    # "the performance advantage of Cray X1 compared to the scalar
    # systems is significantly worse": the X1's lead is a small multiple
    # while the SX-8 keeps an order of magnitude
    x1_lead = (min(at(d9, m, p) for m in ("altix_nl4", "xeon"))
               / at(d9, "x1_msp", p))
    sx8_lead = (min(at(d9, m, p) for m in ("altix_nl4", "xeon"))
                / at(d9, "sx8", p))
    assert x1_lead < 0.5 * sx8_lead

    # SX-8 time grows toward its largest counts but stays in front
    xs, ys = d9["sx8"]
    assert ys[-1] > ys[0]
    top = min(BENCH_MAX_CPUS, 64)
    assert at(d9, "sx8", top) < at(d9, "xeon", top)
