"""Ablation: rank placement (block vs round-robin).

The paper's systems schedule ranks block-wise onto SMP nodes, which
keeps ring neighbours and small recursive-doubling partners on shared
memory.  This bench quantifies how much of the collective performance
depends on that choice.
"""

import pytest

from repro import Cluster, get_machine

MB = 1024 * 1024
P = 32


def timed(placement: str, prog, machine="sx8"):
    cluster = Cluster(get_machine(machine), P, placement=placement)

    def driver(comm):
        yield from comm.barrier()
        t0 = comm.now
        yield from prog(comm)
        return comm.now - t0

    return max(cluster.run(driver).results) * 1e6


def test_block_placement_wins_sendrecv_rings(benchmark):
    """Ring neighbours stay on-node under block placement."""
    def ring(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        yield from comm.sendrecv(right, left, nbytes=MB)

    t_block = benchmark.pedantic(lambda: timed("block", ring),
                                 rounds=1, iterations=1)
    t_rr = timed("roundrobin", ring)
    assert t_block < 0.6 * t_rr


def test_allreduce_placement_sensitivity(benchmark):
    """Placement interacts with the algorithm's distance schedule: with
    2^k nodes, round-robin aliases the *largest* recursive-halving
    distances onto shared memory (rank r and r^16 share a node when
    16 % n_nodes == 0), so at 1 MB round-robin actually wins — the kind
    of non-obvious interplay this ablation exists to surface."""
    def allreduce(comm):
        yield from comm.allreduce(nbytes=MB)

    t_block = benchmark.pedantic(lambda: timed("block", allreduce),
                                 rounds=1, iterations=1)
    t_rr = timed("roundrobin", allreduce)
    # strongly placement-sensitive, and the winner is round-robin here
    assert t_rr < 0.5 * t_block


def test_alltoall_insensitive_to_placement(benchmark):
    """Alltoall touches every pair, so placement barely matters — the
    contrast that shows the ring/allreduce effects are locality, not an
    artefact of the placement code."""
    def alltoall(comm):
        yield from comm.alltoall(nbytes=MB // 8)

    t_block = benchmark.pedantic(lambda: timed("block", alltoall),
                                 rounds=1, iterations=1)
    t_rr = timed("roundrobin", alltoall)
    assert t_rr == pytest.approx(t_block, rel=0.35)
