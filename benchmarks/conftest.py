"""Shared configuration for the per-figure/per-table benchmarks.

Every bench regenerates one of the paper's tables or figures and asserts
its *shape* (orderings, factors, crossovers) against the paper.  CPU
sweeps are capped by default so `pytest benchmarks/ --benchmark-only`
finishes in minutes; set ``REPRO_BENCH_MAX_CPUS`` (e.g. to 2024) for the
paper's full ranges — the assertions adapt where scale matters.
"""

import os

import pytest

#: Default sweep cap for the IMB figures (paper: 512/576).
BENCH_MAX_CPUS = int(os.environ.get("REPRO_BENCH_MAX_CPUS", "64"))

#: Cap for the HPCC balance sweeps (paper: 2024); ring sweeps are cheap
#: so this can afford to go further than the IMB cap.
HPCC_MAX_CPUS = int(os.environ.get("REPRO_BENCH_HPCC_MAX_CPUS",
                                   str(max(BENCH_MAX_CPUS, 128))))


def series_map(fig):
    """{machine: (xs, ys)} accessor for FigureResult."""
    return {s.machine: (list(s.x), list(s.y)) for s in fig.series}


def last_y(fig, machine):
    return fig.by_machine(machine).y[-1]


def y_at_cpus(fig, machine, cpus, extra_key="cpu_counts"):
    """y value at a given CPU count for HPCC figures carrying counts."""
    counts = fig.extra[extra_key][machine]
    s = fig.by_machine(machine)
    return s.y[counts.index(cpus)]


@pytest.fixture(scope="session")
def bench_cap():
    return BENCH_MAX_CPUS
