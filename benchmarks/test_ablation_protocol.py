"""Ablation: eager/rendezvous protocol threshold.

The DESIGN.md model includes both MPI transfer protocols; this bench
shows each one earns its keep: eager wins the latency race for small
messages (no handshake), rendezvous wins for large ones (no staging
copy), and the sender-synchronisation semantics differ observably.
"""

import dataclasses

import pytest

from repro import Cluster
from tests.conftest import make_test_machine


def machine_with_threshold(threshold: int):
    m = make_test_machine()
    net = dataclasses.replace(m.network, eager_threshold=threshold)
    return dataclasses.replace(m, network=net)


def one_way_time(machine, nbytes: int) -> float:
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(2, nbytes=nbytes)  # rank 2: other node
        elif comm.rank == 2:
            yield from comm.recv(0)
            return comm.now

    return Cluster(machine, 4).run(prog).results[2]


def sender_free_time(machine, nbytes: int) -> float:
    def prog(comm):
        if comm.rank == 0:
            yield from comm.send(2, nbytes=nbytes)
            return comm.now
        elif comm.rank == 2:
            yield 0.001  # recv posted late
            yield from comm.recv(0)

    return Cluster(machine, 4).run(prog).results[0]


def test_eager_wins_small_messages(benchmark):
    always_eager = machine_with_threshold(1 << 30)
    always_rndv = machine_with_threshold(0)
    t_eager = benchmark.pedantic(lambda: one_way_time(always_eager, 64),
                                 rounds=1, iterations=1)
    t_rndv = one_way_time(always_rndv, 64)
    # rendezvous pays an extra round trip on every message
    assert t_rndv > t_eager + 1.5 * always_rndv.fabric_params().base_latency


def test_rendezvous_wins_large_messages(benchmark):
    always_eager = machine_with_threshold(1 << 30)
    always_rndv = machine_with_threshold(0)
    n = 16 * 1024 * 1024
    t_rndv = benchmark.pedantic(lambda: one_way_time(always_rndv, n),
                                rounds=1, iterations=1)
    t_eager = one_way_time(always_eager, n)
    # eager stages through a memcpy the rendezvous path avoids
    assert t_eager > t_rndv


def test_sender_semantics_differ(benchmark):
    """Eager senders return immediately; rendezvous senders block until
    the receiver shows up — the classic protocol-visible difference."""
    always_eager = machine_with_threshold(1 << 30)
    always_rndv = machine_with_threshold(0)
    n = 1024 * 1024
    t_eager = benchmark.pedantic(lambda: sender_free_time(always_eager, n),
                                 rounds=1, iterations=1)
    t_rndv = sender_free_time(always_rndv, n)
    assert t_eager < 0.001       # long gone before the late recv
    assert t_rndv > 0.001        # held hostage by the handshake


def test_threshold_sweep_crossover(benchmark):
    """The optimal threshold sits where staging cost = handshake cost."""
    def run():
        out = {}
        for nbytes in (256, 4096, 65536, 1 << 20):
            e = one_way_time(machine_with_threshold(1 << 30), nbytes)
            r = one_way_time(machine_with_threshold(0), nbytes)
            out[nbytes] = e / r
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    # eager relatively best at the small end, worst at the large end
    assert ratios[256] < ratios[1 << 20]
    assert ratios[256] < 1.0
    assert ratios[1 << 20] > 1.0
