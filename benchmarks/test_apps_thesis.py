"""The paper's thesis, tested: application performance is bounded by the
HPCC locality classes (§1).

Each proxy application's cross-machine ordering must follow the
benchmark class it stresses:

* the spectral proxy (alltoall-bound) follows the Fig 12 Alltoall
  ordering and the random-ring bandwidth;
* the AMR ghost-exchange proxy follows the Exchange/point-bandwidth
  tier structure;
* CG's *compute* side follows STREAM, and its communication fraction
  follows ring latency.
"""

import pytest

from repro import get_machine
from repro.apps import AMRConfig, CGConfig, SpectralConfig, run_amr, run_cg, run_spectral
from repro.hpcc import RingConfig, run_ring, run_stream
from repro.imb import run_benchmark

P = 16
MACHINES = ("sx8", "altix_nl4", "xeon", "opteron")


def order(d):
    return sorted(d, key=d.get)


def test_spectral_comm_follows_alltoall_ordering(benchmark):
    """The transpose phases of the spectral proxy order exactly like the
    standalone Alltoall benchmark at the same chunk size; the total time
    winner is the machine Fig 12 crowns."""
    def run():
        comm_t, total, a2a = {}, {}, {}
        for name in MACHINES:
            m = get_machine(name)
            res = run_spectral(
                m, P, SpectralConfig(total_elements=1 << 16, steps=2)
            )
            comm_t[name] = res.comm_fraction * res.elapsed
            total[name] = res.elapsed
            chunk = 16 * (1 << 16) // P // P
            a2a[name] = run_benchmark(m, "Alltoall", P, chunk).time_us
        return comm_t, total, a2a

    comm_t, total, a2a = benchmark.pedantic(run, rounds=1, iterations=1)
    assert order(comm_t) == order(a2a)
    assert order(total)[0] == "sx8"


def test_amr_follows_exchange_tiers(benchmark):
    """In the communication-heavy regime (thin blocks, fat ghost layers)
    the ghost exchange dominates and the half-duplex Myrinet cluster
    drops to last — the Fig 14 tier structure."""
    cfg = AMRConfig(cells_per_rank=40_000, ghost_cells=32_768, steps=4)

    def run():
        out = {}
        for name in MACHINES:
            out[name] = run_amr(get_machine(name), P, cfg).elapsed
        return out

    app = benchmark.pedantic(run, rounds=1, iterations=1)
    assert order(app)[0] == "sx8"
    assert order(app)[-1] == "opteron"


def test_cg_compute_follows_stream(benchmark):
    """With communication amortised (big blocks), CG per-iteration time
    orders by STREAM bandwidth — HPCC's 'low temporal, high spatial'
    class, exactly as the paper's taxonomy predicts."""
    def run():
        app, stream = {}, {}
        for name in MACHINES:
            m = get_machine(name)
            app[name] = run_cg(m, P, CGConfig(n_local=400_000,
                                              iterations=5)).elapsed
            stream[name] = run_stream(m, min(P, 8)).triad_gbs
        return app, stream

    app, stream = benchmark.pedantic(run, rounds=1, iterations=1)
    assert order(app) == order({k: -v for k, v in stream.items()})


def test_cg_comm_fraction_tracks_latency(benchmark):
    """With tiny blocks, CG is an allreduce-latency study."""
    def run():
        frac, lat = {}, {}
        for name in MACHINES:
            m = get_machine(name)
            frac[name] = run_cg(m, P, CGConfig(n_local=64,
                                               iterations=20)).comm_fraction
            lat[name] = run_ring(m, P, RingConfig(n_rings=3)).latency_us
        return frac, lat

    frac, lat = benchmark.pedantic(run, rounds=1, iterations=1)
    # the lowest-latency machine spends the smallest fraction waiting
    assert order(frac)[0] == order(lat)[0]
    assert all(0 < f < 1 for f in frac.values())
